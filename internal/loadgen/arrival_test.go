package loadgen

import (
	"math"
	"testing"
	"time"
)

func arrivalCases() map[string]ArrivalConfig {
	return map[string]ArrivalConfig{
		"poisson-constant": {Process: Poisson, Curve: ConstantRate{PerSec: 40_000}, Seed: 7},
		"poisson-diurnal": {Process: Poisson, Seed: 11,
			Curve: DiurnalRate{Base: 30_000, Swing: 0.9, Period: 20 * time.Millisecond}},
		"poisson-flash": {Process: Poisson, Seed: 13,
			Curve: FlashCrowdRate{Base: 10_000, Spike: 8, Start: 10 * time.Millisecond, Width: 5 * time.Millisecond}},
		"det-constant": {Process: Deterministic, Curve: ConstantRate{PerSec: 25_000}, Seed: 1},
		"det-diurnal": {Process: Deterministic, Seed: 1,
			Curve: DiurnalRate{Base: 20_000, Swing: 1, Period: 8 * time.Millisecond}},
	}
}

func TestScheduleMonotoneAndInWindow(t *testing.T) {
	const from, to = 3*time.Millisecond + 137*time.Microsecond, 41 * time.Millisecond
	for name, cfg := range arrivalCases() {
		s := cfg.Schedule(from, to)
		if len(s) == 0 {
			t.Fatalf("%s: empty schedule", name)
		}
		prev := time.Duration(-1)
		for i, at := range s {
			if at < from || at >= to {
				t.Fatalf("%s: arrival %d at %v outside [%v, %v)", name, i, at, from, to)
			}
			if at < prev {
				t.Fatalf("%s: arrival %d at %v before predecessor %v", name, i, at, prev)
			}
			prev = at
		}
	}
}

func TestScheduleBitwiseRepeatable(t *testing.T) {
	for name, cfg := range arrivalCases() {
		a := cfg.Schedule(0, 30*time.Millisecond)
		b := cfg.Schedule(0, 30*time.Millisecond)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ: %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

// TestScheduleSplitInvariance is the load-bearing slice-seeding property:
// generating [0, T) in one call equals generating [0, b) then [b, T) for ANY
// split point — including splits in the middle of a slice.
func TestScheduleSplitInvariance(t *testing.T) {
	const horizon = 20 * time.Millisecond
	splits := []time.Duration{
		time.Millisecond, // slice boundary
		5*time.Millisecond + 411*time.Microsecond, // mid-slice
		7*time.Millisecond + 1,                    // one ns past a boundary
		horizon - 1,
	}
	for name, cfg := range arrivalCases() {
		whole := cfg.Schedule(0, horizon)
		for _, b := range splits {
			left := cfg.Schedule(0, b)
			right := cfg.Schedule(b, horizon)
			if len(left)+len(right) != len(whole) {
				t.Fatalf("%s split %v: %d + %d arrivals != %d",
					name, b, len(left), len(right), len(whole))
			}
			for i, at := range append(left, right...) {
				if at != whole[i] {
					t.Fatalf("%s split %v: arrival %d is %v, whole-run %v", name, b, i, at, whole[i])
				}
			}
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	base := ArrivalConfig{Process: Poisson, Curve: ConstantRate{PerSec: 50_000}, Seed: 1}
	other := base
	other.Seed = 2
	a := base.Schedule(0, 20*time.Millisecond)
	b := other.Schedule(0, 20*time.Millisecond)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
}

func TestDeterministicCountTracksCumOps(t *testing.T) {
	c := DiurnalRate{Base: 30_000, Swing: 0.8, Period: 10 * time.Millisecond}
	cfg := ArrivalConfig{Process: Deterministic, Curve: c, Seed: 9}
	const horizon = 25 * time.Millisecond
	got := len(cfg.Schedule(0, horizon))
	want := int(math.Floor(c.CumOps(horizon)))
	if got != want && got != want+1 {
		t.Fatalf("deterministic schedule has %d arrivals, CumOps says %d", got, want)
	}
}

func TestPoissonMeanTracksCumOps(t *testing.T) {
	c := ConstantRate{PerSec: 60_000}
	const horizon = 50 * time.Millisecond
	want := c.CumOps(horizon) // 3000
	total := 0
	const seeds = 20
	for seed := uint64(1); seed <= seeds; seed++ {
		total += len(ArrivalConfig{Process: Poisson, Curve: c, Seed: seed}.Schedule(0, horizon))
	}
	mean := float64(total) / seeds
	// ±5 std-devs of the per-run Poisson spread, comfortably non-flaky.
	if tol := 5 * math.Sqrt(want/seeds); math.Abs(mean-want) > tol {
		t.Fatalf("mean arrivals %v over %d seeds; expected %v ± %v", mean, seeds, want, tol)
	}
}

func TestArrivalsIteratorMatchesSchedule(t *testing.T) {
	const from, to = 2500 * time.Microsecond, 33 * time.Millisecond
	for name, cfg := range arrivalCases() {
		want := cfg.Schedule(from, to)
		it := NewArrivals(cfg, from, to)
		var got []time.Duration
		for {
			at, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, at)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: iterator yielded %d arrivals, Schedule %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: iterator arrival %d = %v, Schedule %v", name, i, got[i], want[i])
			}
		}
		if _, ok := it.Next(); ok {
			t.Fatalf("%s: iterator yielded past exhaustion", name)
		}
	}
}

func TestEmptyWindow(t *testing.T) {
	cfg := ArrivalConfig{Process: Poisson, Curve: ConstantRate{PerSec: 1000}, Seed: 3}
	if s := cfg.Schedule(5*time.Millisecond, 5*time.Millisecond); len(s) != 0 {
		t.Fatalf("empty window produced %d arrivals", len(s))
	}
	if s := cfg.Schedule(5*time.Millisecond, 4*time.Millisecond); len(s) != 0 {
		t.Fatalf("inverted window produced %d arrivals", len(s))
	}
	if s := (ArrivalConfig{Process: Poisson, Curve: ConstantRate{}, Seed: 3}).Schedule(0, 10*time.Millisecond); len(s) != 0 {
		t.Fatalf("zero-rate curve produced %d arrivals", len(s))
	}
}
