package loadgen

import (
	"math"
	"time"
)

// RateCurve is an offered-load shape: the instantaneous arrival rate of an
// open-loop traffic source as a function of virtual time. Curves are pure:
// no state, no randomness, so the same curve evaluated twice is bit-equal —
// the property the arrival schedules (and their determinism oracle) build
// on.
//
// CumOps is the load-bearing method: the expected number of arrivals in
// [0, t), i.e. the integral of Rate. Both the deterministic-rate process
// (arrivals where CumOps crosses successive integers) and the
// non-homogeneous Poisson process (inversion sampling of the conditional
// cumulative measure) are generated purely from CumOps, so a curve only
// needs a closed-form integral, never a closed-form inverse.
type RateCurve interface {
	// Rate reports the instantaneous arrival rate at virtual time t, in
	// operations per second of virtual time. Must be non-negative.
	Rate(t time.Duration) float64
	// CumOps reports the expected number of arrivals in [0, t): the
	// integral of Rate over [0, t). Must be continuous, non-decreasing,
	// and zero at t = 0.
	CumOps(t time.Duration) float64
}

// secs converts virtual time to float seconds for curve arithmetic.
func secs(t time.Duration) float64 { return float64(t) / float64(time.Second) }

// ConstantRate offers a fixed load.
type ConstantRate struct {
	// PerSec is the arrival rate in ops per second of virtual time.
	PerSec float64
}

func (c ConstantRate) Rate(time.Duration) float64     { return c.PerSec }
func (c ConstantRate) CumOps(t time.Duration) float64 { return c.PerSec * secs(t) }

// DiurnalRate is the datacenter day/night sinusoid:
//
//	rate(t) = Base * (1 + Swing*sin(2πt/Period + Phase))
//
// with Swing in [0, 1] (Swing = 1 swings between 0 and 2×Base). Two tenants
// with Phase π apart model anti-correlated day/night populations — the load
// shape the planners are supposed to arbitrage.
type DiurnalRate struct {
	// Base is the mean rate in ops/sec; Swing the relative amplitude.
	Base, Swing float64
	// Period is the full day length in virtual time.
	Period time.Duration
	// Phase offsets the sinusoid in radians.
	Phase float64
}

func (c DiurnalRate) omega() float64 { return 2 * math.Pi / secs(c.Period) }

func (c DiurnalRate) Rate(t time.Duration) float64 {
	return c.Base * (1 + c.Swing*math.Sin(c.omega()*secs(t)+c.Phase))
}

func (c DiurnalRate) CumOps(t time.Duration) float64 {
	w := c.omega()
	s := secs(t)
	// ∫ Base*(1+Swing*sin(wt+φ)) dt = Base*(t + Swing/w*(cos φ − cos(wt+φ)))
	return c.Base * (s + c.Swing/w*(math.Cos(c.Phase)-math.Cos(w*s+c.Phase)))
}

// FlashCrowdRate is a step spike: Base load everywhere, multiplied by Spike
// during [Start, Start+Width) — the front-page / breaking-news shape whose
// queueing transient closed-loop benches cannot exhibit.
type FlashCrowdRate struct {
	// Base is the quiescent rate in ops/sec; Spike the multiplier applied
	// during the crowd (Spike = 8 means 8× Base).
	Base, Spike float64
	// Start and Width place the crowd in virtual time.
	Start, Width time.Duration
}

func (c FlashCrowdRate) Rate(t time.Duration) float64 {
	if t >= c.Start && t < c.Start+c.Width {
		return c.Base * c.Spike
	}
	return c.Base
}

func (c FlashCrowdRate) CumOps(t time.Duration) float64 {
	cum := c.Base * secs(t)
	// Add the extra (Spike−1)×Base measure accumulated inside the burst.
	if t > c.Start {
		in := t - c.Start
		if in > c.Width {
			in = c.Width
		}
		cum += c.Base * (c.Spike - 1) * secs(in)
	}
	return cum
}

// ScaledRate multiplies an inner curve by a constant factor — the
// offered-load sweep knob the knee-of-curve experiment turns.
type ScaledRate struct {
	Curve  RateCurve
	Factor float64
}

func (c ScaledRate) Rate(t time.Duration) float64   { return c.Factor * c.Curve.Rate(t) }
func (c ScaledRate) CumOps(t time.Duration) float64 { return c.Factor * c.Curve.CumOps(t) }

// Scale wraps curve so its rate (and cumulative measure) is multiplied by
// factor; factor 1 returns the curve unchanged.
func Scale(curve RateCurve, factor float64) RateCurve {
	if factor == 1 {
		return curve
	}
	return ScaledRate{Curve: curve, Factor: factor}
}

// invCum finds the earliest nanosecond t in (lo, hi] with CumOps(t) >=
// target, by bisection. CumOps is monotone, so the loop is a textbook
// binary search over integer nanoseconds — ~20 iterations for a 1 ms slice,
// bit-deterministic because it never compares computed floats against each
// other, only against the fixed target.
func invCum(c RateCurve, target float64, lo, hi time.Duration) time.Duration {
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if c.CumOps(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
