package vm

import (
	"fmt"
	"time"
)

// This file models the responsiveness experiments of Table III: whether a VM
// whose footprint has been squeezed to a given page count can still complete
// an SSH login or answer an ICMP echo before the client times out.
//
// The pass/fail structure is a documented rule-based model (DESIGN.md §6):
// a service completes within its timeout iff the VM can hold the service's
// simultaneous working window resident; below that the guest livelocks —
// every fault evicts a page the fault path itself still needs. Additionally,
// KVM's hardware-assisted fault handling deadlocks below a critical
// footprint because resolving a fault triggers recursive faults (§VI-E),
// while full virtualisation survives at even a single resident page.

// Service describes one responsiveness probe.
type Service struct {
	// Name identifies the service.
	Name string
	// TotalPages is how many distinct pages the operation touches end to
	// end (binary, libraries, kernel path — "even part of the ssh binary
	// will have to be stored in FluidMem").
	TotalPages int
	// WindowPages is the working set that must be simultaneously resident
	// for the operation to make forward progress.
	WindowPages int
	// Passes is how many times the operation sweeps its working set.
	Passes int
	// Timeout is the client-side deadline.
	Timeout time.Duration
}

// SSHService models accepting an SSH login: authentication walks sshd, PAM,
// libc, and kernel crypto — a few hundred distinct pages with a working
// window in the low hundreds. The paper finds logins still succeed at a
// 180-page footprint and fail at 80.
func SSHService() Service {
	return Service{
		Name:        "ssh",
		TotalPages:  400,
		WindowPages: 150,
		Passes:      3,
		Timeout:     10 * time.Second,
	}
}

// ICMPService models answering one ICMP echo within its 1 s interval: the
// interrupt path, the network stack, and the reply — a few dozen pages. The
// paper finds replies still flow at an 80-page footprint.
func ICMPService() Service {
	return Service{
		Name:        "icmp",
		TotalPages:  72,
		WindowPages: 60,
		Passes:      1,
		Timeout:     time.Second,
	}
}

// KVMDeadlockFootprint is the resident-page floor below which KVM
// hardware-assisted fault handling deadlocks (resolving a page fault
// triggers further faults that can never all be resident). The paper could
// only reach a 1-page footprint under full virtualisation.
const KVMDeadlockFootprint = 24

// ProbeResult reports one service attempt.
type ProbeResult struct {
	Service string
	// Responded reports whether the service completed within its timeout.
	Responded bool
	// Deadlocked reports a KVM fault-handling deadlock: the VM is wedged
	// (not just slow) until its footprint is raised.
	Deadlocked bool
	// Elapsed is the virtual time the attempt took (meaningful when it
	// responded).
	Elapsed time.Duration
	// FootprintPages is the resident footprint capacity during the probe.
	FootprintPages int
}

// FootprintLimiter is implemented by backings whose resident footprint is
// capped (the FluidMem monitor's resizable LRU list). Probe uses it to learn
// the capacity the VM is squeezed to.
type FootprintLimiter interface {
	FootprintLimit() int
}

// Probe attempts the service against the VM at virtual time now. The
// service's pages are drawn from seg, which must hold at least
// Service.TotalPages pages (in Table III runs this is the OS file segment —
// the ssh binary and libraries live there).
func Probe(now time.Duration, v *VM, seg *Segment, svc Service) (ProbeResult, time.Duration, error) {
	if seg.Pages() < svc.TotalPages {
		return ProbeResult{}, now, fmt.Errorf("vm: segment %q has %d pages, service %q needs %d",
			seg.Name, seg.Pages(), svc.Name, svc.TotalPages)
	}
	capacity := v.ResidentPages()
	if lim, ok := v.Backing().(FootprintLimiter); ok {
		capacity = lim.FootprintLimit()
	}
	res := ProbeResult{Service: svc.Name, FootprintPages: capacity}

	// KVM deadlock rule: below the critical footprint, fault handling
	// recurses into itself and wedges the vCPU.
	if v.cfg.Virt == VirtKVM && capacity < KVMDeadlockFootprint {
		res.Deadlocked = true
		return res, now, nil
	}

	// Livelock rule: without room for the working window, each fault evicts
	// a page the same operation still needs and the client times out.
	if capacity < svc.WindowPages {
		return res, now + svc.Timeout, nil
	}

	// The footprint can hold the window: measure the real fault cost of
	// streaming the service's pages through the squeezed VM.
	start := now
	var err error
	for pass := 0; pass < svc.Passes; pass++ {
		stride := svc.TotalPages / svc.WindowPages
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < svc.TotalPages; i++ {
			// Interleave distant pages so the sweep exercises the window.
			page := (i*stride + i/svc.WindowPages) % svc.TotalPages
			if _, now, err = v.Touch(now, seg.Addr(uint64(page)*PageSize), false); err != nil {
				return res, now, fmt.Errorf("vm: probe %s: %w", svc.Name, err)
			}
		}
	}
	res.Elapsed = now - start
	res.Responded = res.Elapsed <= svc.Timeout
	return res, now, nil
}
