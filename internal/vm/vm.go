// Package vm simulates the unmodified guest virtual machine FluidMem manages:
// guest physical memory with realistic page classes (kernel, anonymous,
// file-backed, mlocked), a bootable OS footprint, memory hotplug, a KVM-style
// balloon driver, and the SSH/ICMP service responsiveness model behind the
// paper's Table III.
//
// The VM itself stores no page contents; every access is routed to a Backing
// (the FluidMem monitor, or the guest swap subsystem) which owns residency,
// eviction, and the bytes themselves. This mirrors the paper's architecture:
// the guest is unmodified and memory management lives below it.
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// PageSize is the guest page size.
const PageSize = 4096

// Errors returned by VM operations.
var (
	// ErrOutOfMemory reports an allocation past the guest's physical size.
	ErrOutOfMemory = errors.New("vm: out of guest physical memory")
	// ErrBadAddress reports an access outside any allocated segment.
	ErrBadAddress = errors.New("vm: address outside allocated memory")
)

// PageClass categorises guest pages. The distinction is the heart of the
// full-vs-partial disaggregation argument (§II): swap can evict only
// anonymous pages, while FluidMem can disaggregate every class.
type PageClass int

// Page classes.
const (
	// ClassAnon pages are anonymous process memory — swappable.
	ClassAnon PageClass = iota + 1
	// ClassFile pages are file-backed (binaries, page cache) — written back
	// to the filesystem, never to swap.
	ClassFile
	// ClassKernel pages belong to the guest kernel — unevictable by swap.
	ClassKernel
	// ClassMlocked pages are pinned with mlock — unevictable by swap.
	ClassMlocked
)

func (c PageClass) String() string {
	switch c {
	case ClassAnon:
		return "anon"
	case ClassFile:
		return "file"
	case ClassKernel:
		return "kernel"
	case ClassMlocked:
		return "mlocked"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// VirtMode selects the virtualisation technology (Table III: the KVM page
// fault path deadlocks below a minimal footprint, full virtualisation does
// not).
type VirtMode int

// Virtualisation modes.
const (
	// VirtKVM is hardware-assisted virtualisation (QEMU/KVM).
	VirtKVM VirtMode = iota + 1
	// VirtFull is full software virtualisation (plain QEMU TCG).
	VirtFull
)

// Backing services guest page accesses. Implementations own page residency
// and contents: the FluidMem monitor (internal/core) and the guest swap
// subsystem (internal/swap).
type Backing interface {
	// Touch makes the page containing addr resident and returns its 4 KB
	// frame along with the virtual time at which the access completes. The
	// returned slice is the live frame: writes through it are the guest
	// writing memory.
	Touch(now time.Duration, addr uint64, write bool) (data []byte, done time.Duration, err error)
	// Discard drops a page the guest freed (balloon inflation): its contents
	// are gone and its residency is released.
	Discard(addr uint64)
	// ResidentPages reports the VM's current local-DRAM footprint in pages.
	ResidentPages() int
	// Epoch increments whenever any page's residency or frame changes,
	// invalidating the VM's fast-path access cache.
	Epoch() uint64
}

// ClassAware is implemented by backings whose eviction policy depends on the
// page class (the swap subsystem). The FluidMem monitor deliberately does not
// implement it: full disaggregation treats all pages alike.
type ClassAware interface {
	SetClass(addr uint64, class PageClass)
}

// Config describes a VM.
type Config struct {
	// Name identifies the VM.
	Name string
	// MemBytes is the guest physical memory size visible at boot.
	MemBytes uint64
	// VCPUs is the virtual CPU count (bookkeeping; the evaluation uses 2-3).
	VCPUs int
	// PID is the QEMU process ID on the hypervisor.
	PID int
	// Virt selects KVM or full virtualisation.
	Virt VirtMode
	// Base is the host virtual address where guest physical 0 is mapped.
	// Zero selects a default.
	Base uint64
}

// Segment is one allocated range of guest memory.
type Segment struct {
	Name  string
	Start uint64
	Bytes uint64
	Class PageClass

	vm *VM
}

// End returns the first address past the segment.
func (s *Segment) End() uint64 { return s.Start + s.Bytes }

// Pages returns the segment length in pages.
func (s *Segment) Pages() int { return int(s.Bytes / PageSize) }

// Addr returns the address at byte offset off, for use with VM access calls.
func (s *Segment) Addr(off uint64) uint64 { return s.Start + off }

// VM is one simulated guest.
type VM struct {
	cfg     Config
	backing Backing

	// allocated guest memory, watermark allocator.
	segments []*Segment
	next     uint64
	limit    uint64

	// Single-entry access cache: repeated access to the resident page does
	// not round-trip through the backing (a TLB hit, effectively).
	cachePage  uint64
	cacheData  []byte
	cacheDirty bool
	cacheEpoch uint64
	cacheValid bool

	// stats
	reads, writes uint64
}

// New creates a VM wired to its memory backing.
func New(cfg Config, backing Backing) (*VM, error) {
	if cfg.MemBytes == 0 || cfg.MemBytes%PageSize != 0 {
		return nil, fmt.Errorf("vm: memory size %d must be a positive multiple of the page size", cfg.MemBytes)
	}
	if cfg.VCPUs <= 0 {
		cfg.VCPUs = 1
	}
	if cfg.Virt == 0 {
		cfg.Virt = VirtKVM
	}
	if cfg.Base == 0 {
		cfg.Base = 0x7f00_0000_0000
	}
	if backing == nil {
		return nil, errors.New("vm: nil backing")
	}
	return &VM{
		cfg:     cfg,
		backing: backing,
		next:    cfg.Base,
		limit:   cfg.Base + cfg.MemBytes,
	}, nil
}

// Config returns the VM's configuration.
func (v *VM) Config() Config { return v.cfg }

// Rebind switches the VM's memory backing — the destination monitor taking
// over fault handling after a live migration. Allocations and guest state
// are preserved; the fast-path cache is invalidated. Class tags are replayed
// into class-aware backings.
func (v *VM) Rebind(backing Backing) error {
	if backing == nil {
		return errors.New("vm: rebind to nil backing")
	}
	v.backing = backing
	v.cacheValid = false
	if ca, ok := backing.(ClassAware); ok {
		for _, seg := range v.segments {
			for addr := seg.Start; addr < seg.End(); addr += PageSize {
				ca.SetClass(addr, seg.Class)
			}
		}
	}
	return nil
}

// Backing returns the VM's memory backing.
func (v *VM) Backing() Backing { return v.backing }

// MemBytes reports current guest physical memory (grows with hotplug).
func (v *VM) MemBytes() uint64 { return v.limit - v.cfg.Base }

// FreeBytes reports unallocated guest memory.
func (v *VM) FreeBytes() uint64 { return v.limit - v.next }

// ResidentPages reports the VM's local-DRAM footprint.
func (v *VM) ResidentPages() int { return v.backing.ResidentPages() }

// Alloc reserves a page-aligned segment of guest memory for a workload or OS
// component, tagging its pages with class for class-aware backings.
func (v *VM) Alloc(name string, bytes uint64, class PageClass) (*Segment, error) {
	bytes = (bytes + PageSize - 1) &^ uint64(PageSize-1)
	if bytes == 0 {
		return nil, fmt.Errorf("vm: zero-size allocation %q", name)
	}
	if v.next+bytes > v.limit {
		return nil, fmt.Errorf("%w: %q needs %d bytes, %d free", ErrOutOfMemory, name, bytes, v.FreeBytes())
	}
	seg := &Segment{Name: name, Start: v.next, Bytes: bytes, Class: class, vm: v}
	v.next += bytes
	v.segments = append(v.segments, seg)
	if ca, ok := v.backing.(ClassAware); ok {
		for addr := seg.Start; addr < seg.End(); addr += PageSize {
			ca.SetClass(addr, class)
		}
	}
	return seg, nil
}

// Hotplug adds bytes of guest physical memory (QEMU memory hotplug, §III).
// The new range becomes allocatable immediately; the backing's registered
// region must already cover it or be extended by the caller (the machine
// wiring in the public API handles this).
func (v *VM) Hotplug(bytes uint64) error {
	if bytes == 0 || bytes%PageSize != 0 {
		return fmt.Errorf("vm: hotplug size %d must be a positive multiple of the page size", bytes)
	}
	v.limit += bytes
	return nil
}

// Touch services a guest access to addr, returning the page frame and the
// completion time.
func (v *VM) Touch(now time.Duration, addr uint64, write bool) ([]byte, time.Duration, error) {
	if addr < v.cfg.Base || addr >= v.next {
		return nil, now, fmt.Errorf("%w: %#x", ErrBadAddress, addr)
	}
	page := addr &^ uint64(PageSize-1)
	if write {
		v.writes++
	} else {
		v.reads++
	}
	// Fast path: the page is the one we touched last and nothing evicted it.
	if v.cacheValid && v.cachePage == page && v.cacheEpoch == v.backing.Epoch() && (!write || v.cacheDirty) {
		return v.cacheData, now, nil
	}
	data, done, err := v.backing.Touch(now, addr, write)
	if err != nil {
		return nil, done, err
	}
	v.cacheValid = true
	v.cachePage = page
	v.cacheData = data
	v.cacheDirty = write
	v.cacheEpoch = v.backing.Epoch()
	return data, done, nil
}

// Read64 reads the 8-byte word at addr.
func (v *VM) Read64(now time.Duration, addr uint64) (uint64, time.Duration, error) {
	data, done, err := v.Touch(now, addr, false)
	if err != nil {
		return 0, done, err
	}
	off := addr & (PageSize - 1)
	if off+8 > PageSize {
		return 0, done, fmt.Errorf("vm: unaligned word access straddles pages at %#x", addr)
	}
	return binary.LittleEndian.Uint64(data[off : off+8]), done, nil
}

// Write64 writes the 8-byte word at addr.
func (v *VM) Write64(now time.Duration, addr uint64, value uint64) (time.Duration, error) {
	data, done, err := v.Touch(now, addr, true)
	if err != nil {
		return done, err
	}
	off := addr & (PageSize - 1)
	if off+8 > PageSize {
		return done, fmt.Errorf("vm: unaligned word access straddles pages at %#x", addr)
	}
	binary.LittleEndian.PutUint64(data[off:off+8], value)
	return done, nil
}

// AccessCounts reports total guest reads and writes.
func (v *VM) AccessCounts() (reads, writes uint64) { return v.reads, v.writes }

// Segments returns the allocated segments.
func (v *VM) Segments() []*Segment {
	out := make([]*Segment, len(v.segments))
	copy(out, v.segments)
	return out
}
