package vm

import (
	"fmt"
	"time"

	"fluidmem/internal/clock"
)

// OSProfile parametrises the guest operating system's memory footprint. The
// paper measures ~317 MB (81042 pages) resident after booting to a prompt
// (Table III), roughly a third of the 1 GB test VMs' DRAM; the defaults
// reproduce that mix and the profile scales down proportionally for smaller
// simulated machines.
type OSProfile struct {
	// KernelPages is unevictable kernel memory (text, slabs, page tables).
	KernelPages int
	// FilePages is file-backed memory: binaries, shared libraries, page
	// cache warmed during boot.
	FilePages int
	// AnonPages is anonymous memory of boot-time daemons.
	AnonPages int
	// MlockedPages is pinned memory (e.g. auditd, crypto daemons).
	MlockedPages int
	// HotFraction is the fraction of OS pages in the kernel's steady-state
	// working set; the rest is touched at boot and then goes cold — exactly
	// the memory FluidMem pushes to remote and swap cannot (§VI-D1).
	HotFraction float64
}

// DefaultOSProfile reproduces the paper's 81042-page boot footprint
// (81042 = 19800 kernel + 36500 file + 24062 anon + 680 mlocked), with the
// unevictable portion (kernel + mlocked) matching the 20480-page floor the
// balloon driver bottoms out at in Table III.
func DefaultOSProfile() OSProfile {
	return OSProfile{
		KernelPages:  19800,
		FilePages:    36500,
		AnonPages:    24062,
		MlockedPages: 680,
		HotFraction:  0.12,
	}
}

// ScaledOSProfile shrinks the default profile to totalPages while preserving
// the class mix, for reduced-scale experiments (DESIGN.md §5).
func ScaledOSProfile(totalPages int) OSProfile {
	def := DefaultOSProfile()
	defTotal := def.TotalPages()
	scale := func(n int) int {
		v := n * totalPages / defTotal
		if v < 1 {
			v = 1
		}
		return v
	}
	return OSProfile{
		KernelPages:  scale(def.KernelPages),
		FilePages:    scale(def.FilePages),
		AnonPages:    scale(def.AnonPages),
		MlockedPages: scale(def.MlockedPages),
		HotFraction:  def.HotFraction,
	}
}

// TotalPages is the boot-time resident footprint.
func (p OSProfile) TotalPages() int {
	return p.KernelPages + p.FilePages + p.AnonPages + p.MlockedPages
}

// GuestOS models the booted operating system inside a VM: its segments, its
// hot working set, and the background activity that keeps that set warm.
type GuestOS struct {
	vm      *VM
	profile OSProfile

	kernel, file, anon, mlocked *Segment

	// hot is the set of page addresses in the OS working set.
	hot []uint64
	rng *clock.Rand
}

// BootOS boots the guest: it allocates the OS segments with their page
// classes and touches every page once (the first-touch faults that populate
// a fresh VM, §V-A), returning the booted OS and the completion time.
func BootOS(now time.Duration, v *VM, profile OSProfile, seed uint64) (*GuestOS, time.Duration, error) {
	os := &GuestOS{vm: v, profile: profile, rng: clock.NewRand(seed)}
	var err error
	type alloc struct {
		name  string
		pages int
		class PageClass
		dst   **Segment
	}
	for _, a := range []alloc{
		{"os.kernel", profile.KernelPages, ClassKernel, &os.kernel},
		{"os.file", profile.FilePages, ClassFile, &os.file},
		{"os.anon", profile.AnonPages, ClassAnon, &os.anon},
		{"os.mlocked", profile.MlockedPages, ClassMlocked, &os.mlocked},
	} {
		if a.pages == 0 {
			continue
		}
		*a.dst, err = v.Alloc(a.name, uint64(a.pages)*PageSize, a.class)
		if err != nil {
			return nil, now, fmt.Errorf("boot: %w", err)
		}
		for i := 0; i < a.pages; i++ {
			if _, now, err = v.Touch(now, (*a.dst).Addr(uint64(i)*PageSize), true); err != nil {
				return nil, now, fmt.Errorf("boot: touch %s page %d: %w", a.name, i, err)
			}
		}
	}
	os.buildHotSet()
	return os, now, nil
}

// buildHotSet picks the steady-state OS working set: kernel pages are the
// hottest (interrupts, scheduler), plus slices of file and anon memory.
func (g *GuestOS) buildHotSet() {
	add := func(seg *Segment, fraction float64) {
		if seg == nil {
			return
		}
		n := int(float64(seg.Pages()) * fraction)
		for i := 0; i < n; i++ {
			g.hot = append(g.hot, seg.Addr(uint64(i)*PageSize))
		}
	}
	// Kernel working set is proportionally larger than user-space's.
	add(g.kernel, g.profile.HotFraction*2)
	add(g.file, g.profile.HotFraction)
	add(g.anon, g.profile.HotFraction)
	add(g.mlocked, 1.0) // pinned pages are pinned because they are hot
}

// HotPages reports the size of the OS working set.
func (g *GuestOS) HotPages() int { return len(g.hot) }

// Tick simulates background OS activity: timer interrupts, daemon wakeups,
// and kernel housekeeping touch a random sample of the hot set. Workloads
// interleave Tick with their own accesses so OS pages compete for residency
// exactly as they do on a real guest.
func (g *GuestOS) Tick(now time.Duration, touches int) (time.Duration, error) {
	if len(g.hot) == 0 {
		return now, nil
	}
	var err error
	for i := 0; i < touches; i++ {
		addr := g.hot[g.rng.Intn(len(g.hot))]
		if _, now, err = g.vm.Touch(now, addr, i%4 == 0); err != nil {
			return now, fmt.Errorf("os tick: %w", err)
		}
	}
	return now, nil
}

// Segments returns the OS's memory segments (kernel, file, anon, mlocked in
// that order; nil entries were zero-sized in the profile).
func (g *GuestOS) Segments() []*Segment {
	return []*Segment{g.kernel, g.file, g.anon, g.mlocked}
}
