package vm

import (
	"errors"
	"testing"
	"time"
)

// fakeBacking is an unlimited- or capacity-limited in-memory backing with a
// FIFO eviction policy and a fixed per-miss latency, sufficient to exercise
// the VM in isolation from core/swap.
type fakeBacking struct {
	frames   map[uint64][]byte
	order    []uint64
	capacity int // 0 = unlimited
	missLat  time.Duration
	epoch    uint64
	classes  map[uint64]PageClass

	touches, misses int
}

var (
	_ Backing    = (*fakeBacking)(nil)
	_ ClassAware = (*fakeBacking)(nil)
)

func newFakeBacking(capacity int) *fakeBacking {
	return &fakeBacking{
		frames:   make(map[uint64][]byte),
		capacity: capacity,
		missLat:  30 * time.Microsecond,
		classes:  make(map[uint64]PageClass),
	}
}

func (f *fakeBacking) Touch(now time.Duration, addr uint64, write bool) ([]byte, time.Duration, error) {
	page := addr &^ uint64(PageSize-1)
	f.touches++
	if data, ok := f.frames[page]; ok {
		return data, now, nil
	}
	f.misses++
	if f.capacity > 0 && len(f.frames) >= f.capacity {
		victim := f.order[0]
		f.order = f.order[1:]
		delete(f.frames, victim)
		f.epoch++
	}
	data := make([]byte, PageSize)
	f.frames[page] = data
	f.order = append(f.order, page)
	f.epoch++
	return data, now + f.missLat, nil
}

func (f *fakeBacking) Discard(addr uint64) {
	page := addr &^ uint64(PageSize-1)
	if _, ok := f.frames[page]; !ok {
		return
	}
	delete(f.frames, page)
	for i, p := range f.order {
		if p == page {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	f.epoch++
}

func (f *fakeBacking) ResidentPages() int { return len(f.frames) }
func (f *fakeBacking) Epoch() uint64      { return f.epoch }
func (f *fakeBacking) SetClass(addr uint64, class PageClass) {
	f.classes[addr&^uint64(PageSize-1)] = class
}
func (f *fakeBacking) FootprintLimit() int {
	if f.capacity > 0 {
		return f.capacity
	}
	return 1 << 30
}

func newTestVM(t *testing.T, memBytes uint64, capacity int) (*VM, *fakeBacking) {
	t.Helper()
	b := newFakeBacking(capacity)
	v, err := New(Config{Name: "test", MemBytes: memBytes, PID: 100}, b)
	if err != nil {
		t.Fatal(err)
	}
	return v, b
}

func TestNewValidation(t *testing.T) {
	b := newFakeBacking(0)
	if _, err := New(Config{MemBytes: 0}, b); err == nil {
		t.Fatal("zero memory accepted")
	}
	if _, err := New(Config{MemBytes: 100}, b); err == nil {
		t.Fatal("unaligned memory accepted")
	}
	if _, err := New(Config{MemBytes: PageSize}, nil); err == nil {
		t.Fatal("nil backing accepted")
	}
}

func TestAllocBounds(t *testing.T) {
	v, _ := newTestVM(t, 16*PageSize, 0)
	seg, err := v.Alloc("a", 8*PageSize, ClassAnon)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Pages() != 8 {
		t.Fatalf("Pages = %d", seg.Pages())
	}
	if _, err := v.Alloc("b", 9*PageSize, ClassAnon); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v", err)
	}
	if _, err := v.Alloc("c", 8*PageSize, ClassAnon); err != nil {
		t.Fatalf("exact fit rejected: %v", err)
	}
}

func TestAllocRoundsUp(t *testing.T) {
	v, _ := newTestVM(t, 16*PageSize, 0)
	seg, err := v.Alloc("odd", 100, ClassAnon)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Bytes != PageSize {
		t.Fatalf("Bytes = %d", seg.Bytes)
	}
}

func TestAllocZeroRejected(t *testing.T) {
	v, _ := newTestVM(t, 16*PageSize, 0)
	if _, err := v.Alloc("zero", 0, ClassAnon); err == nil {
		t.Fatal("zero alloc accepted")
	}
}

func TestAllocPropagatesClasses(t *testing.T) {
	v, b := newTestVM(t, 16*PageSize, 0)
	seg, err := v.Alloc("k", 2*PageSize, ClassKernel)
	if err != nil {
		t.Fatal(err)
	}
	if b.classes[seg.Start] != ClassKernel || b.classes[seg.Addr(PageSize)] != ClassKernel {
		t.Fatal("classes not propagated to class-aware backing")
	}
}

func TestTouchOutsideAllocation(t *testing.T) {
	v, _ := newTestVM(t, 16*PageSize, 0)
	if _, _, err := v.Touch(0, 0x1000, false); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v", err)
	}
	seg, _ := v.Alloc("a", PageSize, ClassAnon)
	if _, _, err := v.Touch(0, seg.End(), false); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("past-end err = %v", err)
	}
}

func TestReadWrite64RoundTrip(t *testing.T) {
	v, _ := newTestVM(t, 16*PageSize, 0)
	seg, _ := v.Alloc("data", 4*PageSize, ClassAnon)
	now, err := v.Write64(0, seg.Addr(16), 0xdeadbeefcafe)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := v.Read64(now, seg.Addr(16))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xdeadbeefcafe {
		t.Fatalf("Read64 = %#x", got)
	}
}

func TestRead64StraddleRejected(t *testing.T) {
	v, _ := newTestVM(t, 16*PageSize, 0)
	seg, _ := v.Alloc("data", 2*PageSize, ClassAnon)
	if _, _, err := v.Read64(0, seg.Addr(PageSize-4)); err == nil {
		t.Fatal("straddling read accepted")
	}
	if _, err := v.Write64(0, seg.Addr(PageSize-4), 1); err == nil {
		t.Fatal("straddling write accepted")
	}
}

func TestFastPathCachesResidentPage(t *testing.T) {
	v, b := newTestVM(t, 16*PageSize, 0)
	seg, _ := v.Alloc("data", PageSize, ClassAnon)
	now := time.Duration(0)
	var err error
	if _, now, err = v.Touch(now, seg.Start, false); err != nil {
		t.Fatal(err)
	}
	before := b.touches
	for i := 0; i < 100; i++ {
		if _, now, err = v.Touch(now, seg.Addr(uint64(i*8)), false); err != nil {
			t.Fatal(err)
		}
	}
	if b.touches != before {
		t.Fatalf("fast path missed: %d extra backing touches", b.touches-before)
	}
}

func TestFastPathInvalidatedByEpoch(t *testing.T) {
	v, b := newTestVM(t, 16*PageSize, 0)
	seg, _ := v.Alloc("data", PageSize, ClassAnon)
	if _, _, err := v.Touch(0, seg.Start, false); err != nil {
		t.Fatal(err)
	}
	b.Discard(seg.Start) // bumps epoch and drops the frame
	_, _, err := v.Touch(0, seg.Start, false)
	if err != nil {
		t.Fatal(err)
	}
	if b.misses != 2 {
		t.Fatalf("misses = %d, want refault after discard", b.misses)
	}
}

func TestFastPathWriteAfterReadGoesToBacking(t *testing.T) {
	v, b := newTestVM(t, 16*PageSize, 0)
	seg, _ := v.Alloc("data", PageSize, ClassAnon)
	if _, _, err := v.Touch(0, seg.Start, false); err != nil {
		t.Fatal(err)
	}
	before := b.touches
	// First write after a read-only cache entry must consult the backing
	// (dirty tracking).
	if _, _, err := v.Touch(0, seg.Start, true); err != nil {
		t.Fatal(err)
	}
	if b.touches != before+1 {
		t.Fatalf("write bypassed the backing")
	}
	// Subsequent writes hit the cache.
	before = b.touches
	if _, _, err := v.Touch(0, seg.Start, true); err != nil {
		t.Fatal(err)
	}
	if b.touches != before {
		t.Fatal("second write missed the cache")
	}
}

func TestHotplugExtendsMemory(t *testing.T) {
	v, _ := newTestVM(t, 4*PageSize, 0)
	if _, err := v.Alloc("a", 4*PageSize, ClassAnon); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Alloc("b", PageSize, ClassAnon); err == nil {
		t.Fatal("allocation should fail before hotplug")
	}
	if err := v.Hotplug(4 * PageSize); err != nil {
		t.Fatal(err)
	}
	if v.MemBytes() != 8*PageSize {
		t.Fatalf("MemBytes = %d", v.MemBytes())
	}
	if _, err := v.Alloc("b", 4*PageSize, ClassAnon); err != nil {
		t.Fatalf("post-hotplug alloc: %v", err)
	}
}

func TestHotplugValidation(t *testing.T) {
	v, _ := newTestVM(t, 4*PageSize, 0)
	if err := v.Hotplug(0); err == nil {
		t.Fatal("zero hotplug accepted")
	}
	if err := v.Hotplug(100); err == nil {
		t.Fatal("unaligned hotplug accepted")
	}
}

func TestBootOSFootprint(t *testing.T) {
	v, b := newTestVM(t, 256*1024*PageSize, 0)
	profile := ScaledOSProfile(2000)
	os, now, err := BootOS(0, v, profile, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.ResidentPages(); got != profile.TotalPages() {
		t.Fatalf("resident = %d, want %d", got, profile.TotalPages())
	}
	if now <= 0 {
		t.Fatal("boot took no virtual time")
	}
	if os.HotPages() == 0 {
		t.Fatal("empty OS working set")
	}
	if os.HotPages() >= profile.TotalPages() {
		t.Fatal("entire OS is hot; cold pages are the point")
	}
}

func TestDefaultOSProfileMatchesPaper(t *testing.T) {
	if got := DefaultOSProfile().TotalPages(); got != 81042 {
		t.Fatalf("boot footprint = %d pages, want 81042 (Table III)", got)
	}
}

func TestScaledOSProfilePreservesMix(t *testing.T) {
	p := ScaledOSProfile(8000)
	total := p.TotalPages()
	if total < 7000 || total > 9000 {
		t.Fatalf("scaled total = %d", total)
	}
	def := DefaultOSProfile()
	defKernelFrac := float64(def.KernelPages) / float64(def.TotalPages())
	gotKernelFrac := float64(p.KernelPages) / float64(total)
	if gotKernelFrac < defKernelFrac*0.8 || gotKernelFrac > defKernelFrac*1.2 {
		t.Fatalf("kernel fraction %v, want ≈%v", gotKernelFrac, defKernelFrac)
	}
}

func TestOSTickTouchesHotPages(t *testing.T) {
	v, b := newTestVM(t, 256*1024*PageSize, 0)
	os, now, err := BootOS(0, v, ScaledOSProfile(1000), 1)
	if err != nil {
		t.Fatal(err)
	}
	before := b.touches
	if _, err := os.Tick(now, 50); err != nil {
		t.Fatal(err)
	}
	if b.touches == before {
		t.Fatal("tick touched nothing")
	}
}

func TestBalloonReachesFloorNotBelow(t *testing.T) {
	v, b := newTestVM(t, 256*1024*PageSize, 0)
	if _, _, err := BootOS(0, v, ScaledOSProfile(40000), 1); err != nil {
		t.Fatal(err)
	}
	bal := NewBalloon(v)
	bal.FloorPages = 15000 // above the profile's unevictable minimum
	got, now := bal.InflateTo(0, 0)
	if got > 15000+1 {
		t.Fatalf("footprint after max inflate = %d, want ≈floor 15000", got)
	}
	if got < 14000 {
		t.Fatalf("footprint %d fell far below the driver floor", got)
	}
	if now <= 0 {
		t.Fatal("balloon reclaim cost no time")
	}
	_ = b
}

func TestBalloonSkipsKernelPages(t *testing.T) {
	v, b := newTestVM(t, 256*1024*PageSize, 0)
	profile := ScaledOSProfile(10000)
	if _, _, err := BootOS(0, v, profile, 1); err != nil {
		t.Fatal(err)
	}
	bal := NewBalloon(v)
	bal.FloorPages = 0 // remove the driver floor; class rules still apply
	got, _ := bal.InflateTo(0, 0)
	// Kernel + mlocked can never be ballooned away.
	min := profile.KernelPages + profile.MlockedPages
	if got < min {
		t.Fatalf("footprint %d below unevictable minimum %d", got, min)
	}
	for page := range b.frames {
		class := b.classes[page]
		if class != ClassKernel && class != ClassMlocked {
			t.Fatalf("page of class %v survived unlimited ballooning", class)
		}
	}
}

func TestProbeSucceedsWithRoomyFootprint(t *testing.T) {
	v, _ := newTestVM(t, 4096*PageSize, 1000)
	seg, _ := v.Alloc("os.file", 500*PageSize, ClassFile)
	res, _, err := Probe(0, v, seg, SSHService())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Responded || res.Deadlocked {
		t.Fatalf("probe = %+v", res)
	}
}

func TestProbeLivelocksBelowWindow(t *testing.T) {
	v, _ := newTestVM(t, 4096*PageSize, 80)
	seg, _ := v.Alloc("os.file", 500*PageSize, ClassFile)
	res, _, err := Probe(0, v, seg, SSHService())
	if err != nil {
		t.Fatal(err)
	}
	if res.Responded {
		t.Fatal("SSH responded at 80 pages; paper says it cannot")
	}
	if res.Deadlocked {
		t.Fatal("80 pages is above the KVM deadlock floor")
	}
	// ICMP still works at 80 pages (Table III).
	icmp, _, err := Probe(0, v, seg, ICMPService())
	if err != nil {
		t.Fatal(err)
	}
	if !icmp.Responded {
		t.Fatal("ICMP failed at 80 pages; paper says it responds")
	}
}

func TestProbeKVMDeadlockAtTinyFootprint(t *testing.T) {
	v, _ := newTestVM(t, 4096*PageSize, 1)
	seg, _ := v.Alloc("os.file", 500*PageSize, ClassFile)
	res, _, err := Probe(0, v, seg, ICMPService())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("KVM at 1 page should deadlock")
	}
}

func TestProbeFullVirtSurvivesOnePage(t *testing.T) {
	b := newFakeBacking(1)
	v, err := New(Config{Name: "fv", MemBytes: 4096 * PageSize, Virt: VirtFull}, b)
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := v.Alloc("os.file", 500*PageSize, ClassFile)
	res, _, err := Probe(0, v, seg, ICMPService())
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("full virtualisation must not deadlock")
	}
	if res.Responded {
		t.Fatal("1 page cannot answer ICMP, only stay alive")
	}
}

func TestProbeSegmentTooSmall(t *testing.T) {
	v, _ := newTestVM(t, 4096*PageSize, 0)
	seg, _ := v.Alloc("tiny", 2*PageSize, ClassFile)
	if _, _, err := Probe(0, v, seg, SSHService()); err == nil {
		t.Fatal("undersized segment accepted")
	}
}

func TestPageClassStrings(t *testing.T) {
	for class, want := range map[PageClass]string{
		ClassAnon:    "anon",
		ClassFile:    "file",
		ClassKernel:  "kernel",
		ClassMlocked: "mlocked",
	} {
		if class.String() != want {
			t.Fatalf("%d.String() = %q", class, class.String())
		}
	}
}

func TestAccessCounts(t *testing.T) {
	v, _ := newTestVM(t, 16*PageSize, 0)
	seg, _ := v.Alloc("a", PageSize, ClassAnon)
	v.Touch(0, seg.Start, false)
	v.Touch(0, seg.Start, true)
	v.Touch(0, seg.Start, true)
	r, w := v.AccessCounts()
	if r != 1 || w != 2 {
		t.Fatalf("counts = %d/%d", r, w)
	}
}
