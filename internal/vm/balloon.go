package vm

import (
	"time"
)

// Balloon models the virtio-balloon driver, the guest-cooperative
// alternative for shrinking a VM's footprint (§VII, Table III). Inflating
// the balloon makes the guest free pages that the hypervisor then reclaims.
// Two properties from the paper are modelled: reclaim is slow (pages must be
// flushed before reuse), and the driver has a floor — it cannot shrink the
// footprint below ~64 MB (20480 pages), whereas FluidMem's LRU resize can go
// to near zero.
type Balloon struct {
	vm *VM
	// FloorPages is the smallest footprint the driver can reach.
	FloorPages int
	// ReclaimPerPage is the virtual-time cost of freeing one guest page
	// (flush + madvise round trip).
	ReclaimPerPage time.Duration

	inflated int
}

// DefaultBalloonFloorPages matches Table III's "Max VM balloon size" row:
// 20480 pages = 64 MB.
const DefaultBalloonFloorPages = 20480

// NewBalloon attaches a balloon driver to the VM.
func NewBalloon(v *VM) *Balloon {
	return &Balloon{
		vm:             v,
		FloorPages:     DefaultBalloonFloorPages,
		ReclaimPerPage: 18 * time.Microsecond,
	}
}

// InflatedPages reports how many pages the balloon currently holds.
func (b *Balloon) InflatedPages() int { return b.inflated }

// InflateTo grows the balloon until the VM's resident footprint falls to
// target pages, the driver floor is reached, or no more guest pages are
// reclaimable. Kernel and mlocked pages are never balloonable. It returns
// the achieved footprint and the completion time.
func (b *Balloon) InflateTo(now time.Duration, target int) (int, time.Duration) {
	if target < b.FloorPages {
		target = b.FloorPages
	}
	// Free the coldest guest memory first: walk segments last-to-first
	// (workload heaps before OS), pages back-to-front.
	segs := b.vm.Segments()
	for i := len(segs) - 1; i >= 0; i-- {
		seg := segs[i]
		if seg.Class == ClassKernel || seg.Class == ClassMlocked {
			continue
		}
		for p := seg.Pages() - 1; p >= 0; p-- {
			if b.vm.ResidentPages() <= target {
				return b.vm.ResidentPages(), now
			}
			addr := seg.Addr(uint64(p) * PageSize)
			b.vm.backing.Discard(addr)
			b.inflated++
			now += b.ReclaimPerPage
		}
	}
	return b.vm.ResidentPages(), now
}

// Deflate releases the balloon: the guest may reuse the pages (they fault
// back in on next touch). Deflation is immediate.
func (b *Balloon) Deflate() {
	b.inflated = 0
}
