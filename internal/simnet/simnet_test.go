package simnet

import (
	"testing"
	"time"

	"fluidmem/internal/clock"
)

func fixedNet(latency time.Duration) *Network {
	return New(clock.Fixed(latency), 1)
}

func TestSendDelivers(t *testing.T) {
	n := fixedNet(10 * time.Microsecond)
	var got []Message
	n.Register("b", func(now time.Duration, m Message) { got = append(got, m) })
	n.Send("a", "b", "hello")
	n.Drain(100)
	if len(got) != 1 || got[0].Payload != "hello" || got[0].From != "a" {
		t.Fatalf("got %+v", got)
	}
	if n.Clock.Now() != 10*time.Microsecond {
		t.Fatalf("clock = %v, want 10µs", n.Clock.Now())
	}
}

func TestSendToUnknownNodeDropped(t *testing.T) {
	n := fixedNet(time.Microsecond)
	n.Send("a", "nobody", 1)
	n.Drain(10)
	// A missing handler is misconfiguration, not injected chaos: it must not
	// hide inside the chaos drop counter.
	if d, drop := n.Stats(); d != 0 || drop != 0 {
		t.Fatalf("delivered=%d dropped=%d, want 0/0", d, drop)
	}
	if got := n.DroppedNoHandler(); got != 1 {
		t.Fatalf("droppedNoHandler = %d, want 1", got)
	}
}

func TestDuplicateRate(t *testing.T) {
	n := fixedNet(time.Microsecond)
	n.SetDuplicateRate(0.5)
	recv := 0
	n.Register("b", func(now time.Duration, m Message) { recv++ })
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send("a", "b", i)
	}
	n.Drain(3 * total)
	extra := float64(recv-total) / total
	if extra < 0.4 || extra > 0.6 {
		t.Fatalf("duplicate fraction %v with 50%% duplication", extra)
	}
	if n.Duplicated() != uint64(recv-total) {
		t.Fatalf("Duplicated() = %d, deliveries beyond originals = %d", n.Duplicated(), recv-total)
	}
}

func TestDuplicateRateZeroPreservesRNGSequence(t *testing.T) {
	// Enabling the feature with rate 0 must not consume RNG draws: existing
	// seeded tests depend on the exact pre-duplication event sequence.
	deliveries := func(dup bool) []time.Duration {
		n := New(clock.LatencyModel{Base: 5 * time.Microsecond, Jitter: 2 * time.Microsecond}, 7)
		if dup {
			n.SetDuplicateRate(0)
		}
		var at []time.Duration
		n.Register("b", func(now time.Duration, m Message) { at = append(at, now) })
		for i := 0; i < 50; i++ {
			n.Send("a", "b", i)
		}
		n.Drain(200)
		return at
	}
	a, b := deliveries(false), deliveries(true)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFIFOOrderingPerLink(t *testing.T) {
	n := fixedNet(5 * time.Microsecond)
	var order []int
	n.Register("b", func(now time.Duration, m Message) { order = append(order, m.Payload.(int)) })
	for i := 0; i < 10; i++ {
		n.Send("a", "b", i)
	}
	n.Drain(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestLinkOverride(t *testing.T) {
	n := fixedNet(100 * time.Microsecond)
	n.SetLink("a", "b", clock.Fixed(time.Microsecond))
	var at time.Duration
	n.Register("b", func(now time.Duration, m Message) { at = now })
	n.Send("a", "b", 1)
	n.Drain(10)
	if at != time.Microsecond {
		t.Fatalf("delivered at %v, want 1µs", at)
	}
}

func TestPartitionDrops(t *testing.T) {
	n := fixedNet(time.Microsecond)
	recv := 0
	n.Register("b", func(now time.Duration, m Message) { recv++ })
	n.Partition("b")
	n.Send("a", "b", 1)
	n.Drain(10)
	if recv != 0 {
		t.Fatal("partitioned node received a message")
	}
	n.Heal("b")
	n.Send("a", "b", 2)
	n.Drain(10)
	if recv != 1 {
		t.Fatal("healed node did not receive")
	}
}

func TestPartitionAppliedAtDelivery(t *testing.T) {
	// A message already in flight when the partition starts is dropped.
	n := fixedNet(10 * time.Microsecond)
	recv := 0
	n.Register("b", func(now time.Duration, m Message) { recv++ })
	n.Send("a", "b", 1)
	n.Partition("b")
	n.Drain(10)
	if recv != 0 {
		t.Fatal("in-flight message delivered through partition")
	}
}

func TestPartitionPairBlocksBothDirections(t *testing.T) {
	n := fixedNet(time.Microsecond)
	recv := make(map[string]int)
	for _, name := range []string{"a", "b", "c"} {
		name := name
		n.Register(name, func(now time.Duration, m Message) { recv[name]++ })
	}
	n.PartitionPair("a", "b")
	n.Send("a", "b", 1)
	n.Send("b", "a", 2)
	// Both keep talking to c — a pairwise cut is not node isolation.
	n.Send("a", "c", 3)
	n.Send("c", "b", 4)
	n.Drain(10)
	if recv["a"] != 0 || recv["b"] != 1 || recv["c"] != 1 {
		t.Fatalf("recv = %v, want a:0 b:1 c:1", recv)
	}
	n.HealPair("a", "b")
	n.Send("a", "b", 5)
	n.Send("b", "a", 6)
	n.Drain(10)
	if recv["a"] != 1 || recv["b"] != 2 {
		t.Fatalf("after heal recv = %v, want a:1 b:2", recv)
	}
}

func TestPartitionLinkIsAsymmetric(t *testing.T) {
	n := fixedNet(time.Microsecond)
	recv := make(map[string]int)
	for _, name := range []string{"a", "b"} {
		name := name
		n.Register(name, func(now time.Duration, m Message) { recv[name]++ })
	}
	n.PartitionLink("a", "b")
	n.Send("a", "b", 1) // cut direction: dropped
	n.Send("b", "a", 2) // reverse direction: flows
	n.Drain(10)
	if recv["b"] != 0 || recv["a"] != 1 {
		t.Fatalf("recv = %v, want a:1 b:0", recv)
	}
	if !n.LinkCut("a", "b") || n.LinkCut("b", "a") {
		t.Fatal("LinkCut should report a->b cut, b->a open")
	}
	n.HealLink("a", "b")
	n.Send("a", "b", 3)
	n.Drain(10)
	if recv["b"] != 1 {
		t.Fatalf("after heal recv = %v, want b:1", recv)
	}
}

func TestPartitionPairAppliedAtDelivery(t *testing.T) {
	// A cut that lands while a message is in flight still eats it, matching
	// whole-node partition semantics.
	n := fixedNet(10 * time.Microsecond)
	recv := 0
	n.Register("b", func(now time.Duration, m Message) { recv++ })
	n.Send("a", "b", 1)
	n.PartitionPair("a", "b")
	n.Drain(10)
	if recv != 0 {
		t.Fatal("in-flight message delivered through pairwise cut")
	}
}

func TestLossRate(t *testing.T) {
	n := fixedNet(time.Microsecond)
	n.SetLossRate(0.5)
	recv := 0
	n.Register("b", func(now time.Duration, m Message) { recv++ })
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send("a", "b", i)
	}
	n.Drain(total + 10)
	frac := float64(recv) / total
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("received fraction %v with 50%% loss", frac)
	}
}

func TestAfterTimer(t *testing.T) {
	n := fixedNet(time.Microsecond)
	fired := time.Duration(-1)
	n.After(42*time.Microsecond, func(now time.Duration) { fired = now })
	n.Drain(10)
	if fired != 42*time.Microsecond {
		t.Fatalf("timer fired at %v", fired)
	}
}

func TestAfterNegativeClamped(t *testing.T) {
	n := fixedNet(time.Microsecond)
	fired := false
	n.After(-5, func(now time.Duration) { fired = true })
	n.Drain(10)
	if !fired {
		t.Fatal("negative timer never fired")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	n := fixedNet(time.Microsecond)
	fired := 0
	n.After(10*time.Microsecond, func(now time.Duration) { fired++ })
	n.After(100*time.Microsecond, func(now time.Duration) { fired++ })
	n.RunUntil(50 * time.Microsecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if n.Clock.Now() != 50*time.Microsecond {
		t.Fatalf("clock = %v, want 50µs", n.Clock.Now())
	}
	if n.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", n.Pending())
	}
}

func TestRunForRelative(t *testing.T) {
	n := fixedNet(time.Microsecond)
	n.RunFor(30 * time.Microsecond)
	n.RunFor(30 * time.Microsecond)
	if n.Clock.Now() != 60*time.Microsecond {
		t.Fatalf("clock = %v, want 60µs", n.Clock.Now())
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	run := func() []int {
		n := fixedNet(time.Microsecond)
		var order []int
		n.Register("x", func(now time.Duration, m Message) { order = append(order, m.Payload.(int)) })
		// All three arrive at the same instant; seq must break the tie.
		n.Send("a", "x", 1)
		n.Send("b", "x", 2)
		n.Send("c", "x", 3)
		n.Drain(10)
		return order
	}
	a, b := run(), run()
	if len(a) != 3 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged: %v vs %v", a, b)
		}
	}
}

func TestHandlerMaySendMore(t *testing.T) {
	// Ping-pong: handlers sending from within handlers must work (Raft RPCs).
	n := fixedNet(time.Microsecond)
	hops := 0
	n.Register("a", func(now time.Duration, m Message) {
		hops++
		if hops < 10 {
			n.Send("a", "b", nil)
		}
	})
	n.Register("b", func(now time.Duration, m Message) {
		hops++
		if hops < 10 {
			n.Send("b", "a", nil)
		}
	})
	n.Send("start", "a", nil)
	n.Drain(100)
	if hops != 10 {
		t.Fatalf("hops = %d, want 10", hops)
	}
}

func TestDrainRespectsCap(t *testing.T) {
	n := fixedNet(time.Microsecond)
	// Self-perpetuating timer.
	var tick func(now time.Duration)
	tick = func(now time.Duration) { n.After(time.Microsecond, tick) }
	n.After(time.Microsecond, tick)
	if got := n.Drain(25); got != 25 {
		t.Fatalf("Drain = %d, want 25", got)
	}
}
