// Package simnet is an in-process, discrete-event message fabric. Nodes
// exchange messages over links with configurable latency, loss, and
// partitions, all on a shared virtual clock. It is the substrate under the
// Raft-backed partition registry and the networked key-value transports.
package simnet

import (
	"container/heap"
	"fmt"
	"time"

	"fluidmem/internal/clock"
)

// Message is a payload in flight between two nodes.
type Message struct {
	From    string
	To      string
	Payload any
}

// Handler consumes a message delivered to a node at virtual time now.
type Handler func(now time.Duration, msg Message)

// event is a scheduled occurrence: either a message delivery or a timer.
type event struct {
	at   time.Duration
	seq  uint64 // tie-break so ordering is deterministic
	fire func(now time.Duration)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Network is the fabric. It owns the virtual clock shared by everything
// attached to it. Not safe for concurrent use (single-threaded DES).
type Network struct {
	Clock *clock.Clock

	defaultLink clock.LatencyModel
	links       map[string]clock.LatencyModel // "from->to"
	handlers    map[string]Handler
	partitioned map[string]bool // node isolation
	cutLinks    map[string]bool // directed link cuts, "from->to"
	lossRate    float64
	dupRate     float64
	rng         *clock.Rand
	queue       eventQueue
	seq         uint64
	delivered   uint64
	dropped     uint64
	duplicated  uint64
	// droppedNoHandler counts messages to names with no registered handler —
	// misconfiguration (or a stopped node), counted separately from injected
	// chaos so tests can tell the two apart.
	droppedNoHandler uint64
}

// New creates a network whose links default to the given latency model.
func New(defaultLink clock.LatencyModel, seed uint64) *Network {
	return &Network{
		Clock:       clock.New(),
		defaultLink: defaultLink,
		links:       make(map[string]clock.LatencyModel),
		handlers:    make(map[string]Handler),
		partitioned: make(map[string]bool),
		cutLinks:    make(map[string]bool),
		rng:         clock.NewRand(seed),
	}
}

// Register attaches a node with a message handler. Re-registering a name
// replaces its handler (used when a node restarts).
func (n *Network) Register(name string, h Handler) {
	n.handlers[name] = h
}

// SetLink overrides the latency model for the directed link from->to.
func (n *Network) SetLink(from, to string, m clock.LatencyModel) {
	n.links[linkKey(from, to)] = m
}

// SetLossRate drops each message independently with probability p.
func (n *Network) SetLossRate(p float64) {
	n.lossRate = p
}

// SetDuplicateRate delivers each message a second time with probability p
// (independent latency draw, so the copy may arrive before or after the
// original). At-least-once transports do exactly this on retransmit; clients
// that are not idempotent mis-apply the copy.
func (n *Network) SetDuplicateRate(p float64) {
	n.dupRate = p
}

// Partition isolates a node: messages to and from it are dropped.
func (n *Network) Partition(name string) {
	n.partitioned[name] = true
}

// Heal reconnects a previously partitioned node.
func (n *Network) Heal(name string) {
	delete(n.partitioned, name)
}

// Partitioned reports whether a node is currently isolated by Partition.
func (n *Network) Partitioned(name string) bool { return n.partitioned[name] }

// PartitionLink cuts the single directed link from->to: messages in that
// direction are dropped while the reverse direction keeps flowing. Real
// partial partitions are frequently asymmetric (a broken switch queue, a
// one-way firewall rule), and consensus protocols must survive them.
func (n *Network) PartitionLink(from, to string) {
	n.cutLinks[linkKey(from, to)] = true
}

// HealLink restores the directed link from->to.
func (n *Network) HealLink(from, to string) {
	delete(n.cutLinks, linkKey(from, to))
}

// PartitionPair cuts both directions between a and b — a pairwise partial
// partition. Unlike Partition(name), the two nodes keep talking to everyone
// else; only their mutual links are severed.
func (n *Network) PartitionPair(a, b string) {
	n.PartitionLink(a, b)
	n.PartitionLink(b, a)
}

// HealPair restores both directions between a and b.
func (n *Network) HealPair(a, b string) {
	n.HealLink(a, b)
	n.HealLink(b, a)
}

// LinkCut reports whether the directed link from->to is currently cut.
func (n *Network) LinkCut(from, to string) bool { return n.cutLinks[linkKey(from, to)] }

// Send schedules delivery of payload from->to after the link latency.
// Messages on the same link are delivered in send order (FIFO links).
func (n *Network) Send(from, to string, payload any) {
	if n.partitioned[from] || n.partitioned[to] || n.cutLinks[linkKey(from, to)] {
		n.dropped++
		return
	}
	if n.lossRate > 0 && n.rng.Float64() < n.lossRate {
		n.dropped++
		return
	}
	model := n.defaultLink
	if m, ok := n.links[linkKey(from, to)]; ok {
		model = m
	}
	msg := Message{From: from, To: to, Payload: payload}
	n.deliverAfter(model.Sample(n.rng), msg)
	// Duplication draws happen only when enabled so that existing seeds
	// reproduce the exact pre-duplication event sequences.
	if n.dupRate > 0 && n.rng.Float64() < n.dupRate {
		n.duplicated++
		n.deliverAfter(model.Sample(n.rng), msg)
	}
}

// deliverAfter schedules one delivery attempt of msg after delay.
func (n *Network) deliverAfter(delay time.Duration, msg Message) {
	n.schedule(n.Clock.Now()+delay, func(now time.Duration) {
		// A cut that lands while the message is in flight still eats it:
		// partitions sever the wire, not just the send queue.
		if n.partitioned[msg.To] || n.cutLinks[linkKey(msg.From, msg.To)] {
			n.dropped++
			return
		}
		h, ok := n.handlers[msg.To]
		if !ok {
			n.droppedNoHandler++
			return
		}
		n.delivered++
		h(now, msg)
	})
}

// After schedules fn to run after d elapses on the virtual clock.
func (n *Network) After(d time.Duration, fn func(now time.Duration)) {
	if d < 0 {
		d = 0
	}
	n.schedule(n.Clock.Now()+d, fn)
}

// Step delivers the next pending event, advancing the clock to it. It
// reports whether an event was processed.
func (n *Network) Step() bool {
	if len(n.queue) == 0 {
		return false
	}
	ev := heap.Pop(&n.queue).(*event)
	n.Clock.AdvanceTo(ev.at)
	ev.fire(n.Clock.Now())
	return true
}

// RunUntil processes events until the virtual clock reaches deadline or the
// queue drains, whichever comes first.
func (n *Network) RunUntil(deadline time.Duration) {
	for len(n.queue) > 0 && n.queue[0].at <= deadline {
		n.Step()
	}
	n.Clock.AdvanceTo(deadline)
}

// RunFor processes events for d of virtual time from now.
func (n *Network) RunFor(d time.Duration) {
	n.RunUntil(n.Clock.Now() + d)
}

// Drain runs events until the queue is empty or maxEvents have fired,
// returning the number of events processed. The cap guards against runaway
// timer loops in tests.
func (n *Network) Drain(maxEvents int) int {
	count := 0
	for count < maxEvents && n.Step() {
		count++
	}
	return count
}

// Pending reports the number of scheduled events.
func (n *Network) Pending() int { return len(n.queue) }

// Stats reports delivered and dropped message counts. Dropped covers
// injected chaos (loss, partitions); silent drops at unregistered handlers
// are reported by DroppedNoHandler.
func (n *Network) Stats() (delivered, dropped uint64) {
	return n.delivered, n.dropped
}

// DroppedNoHandler reports messages dropped because their destination had
// no registered handler — misconfiguration, not injected chaos.
func (n *Network) DroppedNoHandler() uint64 { return n.droppedNoHandler }

// Duplicated reports messages that were injected a second delivery.
func (n *Network) Duplicated() uint64 { return n.duplicated }

func (n *Network) schedule(at time.Duration, fire func(now time.Duration)) {
	n.seq++
	heap.Push(&n.queue, &event{at: at, seq: n.seq, fire: fire})
}

func linkKey(from, to string) string {
	return fmt.Sprintf("%s->%s", from, to)
}
