// Package swap simulates the guest kernel's swap subsystem — the mechanism
// behind swap-based (partial) memory disaggregation systems like Infiniswap
// and NVMeoF remote swap that the paper compares against (§II, §VI).
//
// The model captures the properties the comparison hinges on:
//
//   - Only anonymous pages go to swap. File-backed pages are written back to
//     the filesystem, and kernel/mlocked pages are unevictable — so roughly
//     a third of the guest OS footprint is pinned in DRAM no matter how cold
//     it is (the Figure 4b effect).
//   - Victim selection uses active/inactive lists with referenced bits
//     (second chance), which tracks the working set *better* than FluidMem's
//     insertion-ordered LRU — the reason swap-to-DRAM edges ahead at scale
//     factors 22–23 (§VI-D1).
//   - A swap-in traverses the kernel block layer: swap-cache lookup, bio
//     submission, device service time, completion interrupt, and a page
//     copy — the multi-layer path whose latency FluidMem's user-space
//     handler undercuts (§V-B zero-copy discussion).
//   - Swap-out writeback is asynchronous (kswapd), entering the fault
//     critical path only through writeback throttling when the device
//     queue grows too deep.
package swap

import (
	"container/list"
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/blockdev"
	"fluidmem/internal/clock"
	"fluidmem/internal/vm"
)

// PageSize is the page granularity.
const PageSize = 4096

// Errors.
var (
	// ErrOOM reports that reclaim found nothing evictable: the guest OOMs.
	ErrOOM = errors.New("swap: out of memory, nothing evictable")
	// ErrSwapFull reports exhausted swap space.
	ErrSwapFull = errors.New("swap: swap device full")
)

// Params configures the subsystem.
type Params struct {
	// FramePages is the VM's local DRAM capacity in pages (the paper's
	// swap VMs have 1 GB local).
	FramePages int
	// MinorFault is the cost of a first-touch zero-fill fault.
	MinorFault clock.LatencyModel
	// KernelFault is fault entry/exit plus fault-path bookkeeping.
	KernelFault clock.LatencyModel
	// SwapCache is swap-cache lookup and insertion.
	SwapCache clock.LatencyModel
	// BlockLayer is bio submission plus completion handling for one I/O.
	BlockLayer clock.LatencyModel
	// PageCopy is copying the page between the block buffer and the frame —
	// the copy FluidMem's remap avoids.
	PageCopy clock.LatencyModel
	// LRUBookkeeping is list/PTE maintenance per fault.
	LRUBookkeeping clock.LatencyModel
	// ReclaimBatch is how many frames kswapd reclaims per pressure episode.
	ReclaimBatch int
	// ScanCost is the CPU cost of scanning one page during reclaim.
	ScanCost time.Duration
	// ThrottleDepth is how far the swap device may run behind before
	// writeback throttling stalls the faulting path.
	ThrottleDepth time.Duration
	// ReadaheadPages is the swap-in readahead window (the paper disables it:
	// readahead 0).
	ReadaheadPages int
	// Swappiness biases reclaim toward anon (higher) or file (lower) pages,
	// 0–200 like the sysctl. The paper sets 100.
	Swappiness int
}

// DefaultParams returns the kernel-path costs calibrated so the Figure 3
// swap averages land near the paper's (26.34 µs DRAM / 41.73 µs NVMeoF /
// 106.56 µs SSD with a 4 GB WSS over 1 GB DRAM).
func DefaultParams(framePages int) Params {
	return Params{
		FramePages:     framePages,
		MinorFault:     clock.LatencyModel{Base: 3500 * time.Nanosecond, Jitter: 500 * time.Nanosecond},
		KernelFault:    clock.LatencyModel{Base: 5 * time.Microsecond, Jitter: 700 * time.Nanosecond},
		SwapCache:      clock.LatencyModel{Base: 3 * time.Microsecond, Jitter: 400 * time.Nanosecond},
		BlockLayer:     clock.LatencyModel{Base: 14 * time.Microsecond, Jitter: 1500 * time.Nanosecond, TailProb: 0.005, TailExtra: 120 * time.Microsecond},
		PageCopy:       clock.LatencyModel{Base: 2500 * time.Nanosecond, Jitter: 300 * time.Nanosecond},
		LRUBookkeeping: clock.LatencyModel{Base: 5500 * time.Nanosecond, Jitter: 500 * time.Nanosecond},
		ReclaimBatch:   32,
		ScanCost:       400 * time.Nanosecond,
		ThrottleDepth:  4 * time.Millisecond,
		ReadaheadPages: 0,
		Swappiness:     100,
	}
}

// Stats counts subsystem activity.
type Stats struct {
	MinorFaults uint64
	MajorFaults uint64 // swap-ins
	FileRefills uint64 // file-backed pages re-read from the filesystem
	SwapOuts    uint64
	FileWrites  uint64
	DroppedFile uint64 // clean file pages dropped without I/O
	Reclaims    uint64
	Throttles   uint64
	Scanned     uint64
}

// frame is one resident page.
type frame struct {
	addr       uint64
	data       []byte
	class      vm.PageClass
	dirty      bool
	referenced bool
	active     bool
	elem       *list.Element
}

// Subsystem is the guest swap implementation of vm.Backing.
type Subsystem struct {
	params  Params
	swapDev *blockdev.Device
	fsDev   *blockdev.Device
	rng     *clock.Rand

	frames   map[uint64]*frame
	active   *list.List // front = oldest
	inactive *list.List

	classes   map[uint64]vm.PageClass
	swapSlots map[uint64]uint64 // page addr → swap slot (page still out there)
	freeSlots []uint64
	nextSlot  uint64
	fsBlocks  map[uint64]uint64 // file page addr → fs block
	nextBlock uint64

	epoch uint64
	stats Stats
}

var (
	_ vm.Backing          = (*Subsystem)(nil)
	_ vm.ClassAware       = (*Subsystem)(nil)
	_ vm.FootprintLimiter = (*Subsystem)(nil)
)

// New builds a subsystem over the given swap and filesystem devices.
func New(p Params, swapDev, fsDev *blockdev.Device, seed uint64) (*Subsystem, error) {
	if p.FramePages <= 0 {
		return nil, fmt.Errorf("swap: FramePages = %d", p.FramePages)
	}
	if swapDev == nil || fsDev == nil {
		return nil, errors.New("swap: nil device")
	}
	if p.ReclaimBatch <= 0 {
		p.ReclaimBatch = 32
	}
	return &Subsystem{
		params:    p,
		swapDev:   swapDev,
		fsDev:     fsDev,
		rng:       clock.NewRand(seed),
		frames:    make(map[uint64]*frame),
		active:    list.New(),
		inactive:  list.New(),
		classes:   make(map[uint64]vm.PageClass),
		swapSlots: make(map[uint64]uint64),
		fsBlocks:  make(map[uint64]uint64),
	}, nil
}

// SetClass implements vm.ClassAware.
func (s *Subsystem) SetClass(addr uint64, class vm.PageClass) {
	s.classes[align(addr)] = class
}

// ResidentPages implements vm.Backing.
func (s *Subsystem) ResidentPages() int { return len(s.frames) }

// FootprintLimit implements vm.FootprintLimiter.
func (s *Subsystem) FootprintLimit() int { return s.params.FramePages }

// Epoch implements vm.Backing.
func (s *Subsystem) Epoch() uint64 { return s.epoch }

// Stats returns a snapshot of activity counters.
func (s *Subsystem) Stats() Stats { return s.stats }

// Touch implements vm.Backing: the guest accesses addr.
func (s *Subsystem) Touch(now time.Duration, addr uint64, write bool) ([]byte, time.Duration, error) {
	page := align(addr)
	if f, ok := s.frames[page]; ok {
		// Resident: referenced-bit bookkeeping only (hardware-speed hit).
		if f.referenced && !f.active {
			s.promote(f)
		}
		f.referenced = true
		if write {
			f.dirty = true
		}
		return f.data, now, nil
	}

	// Fault. Secure a frame first (may reclaim).
	var err error
	if now, err = s.ensureFrame(now); err != nil {
		return nil, now, err
	}

	f := &frame{addr: page, class: s.classOf(page), dirty: write, referenced: false}
	switch {
	case s.swapSlots[page] != 0:
		// Major fault: swap-in through the block layer.
		s.stats.MajorFaults++
		slot := s.swapSlots[page] - 1
		now += s.params.KernelFault.Sample(s.rng)
		now += s.params.SwapCache.Sample(s.rng)
		now += s.params.BlockLayer.Sample(s.rng)
		var data []byte
		data, now, err = s.swapDev.ReadPage(now, slot)
		if err != nil {
			return nil, now, fmt.Errorf("swap-in %#x: %w", page, err)
		}
		s.readahead(now, page)
		now += s.params.PageCopy.Sample(s.rng)
		now += s.params.LRUBookkeeping.Sample(s.rng)
		f.data = data
		// The slot is freed on swap-in (no swap cache retention modelled).
		delete(s.swapSlots, page)
		s.freeSlots = append(s.freeSlots, slot)
	case s.fsBlocks[page] != 0:
		// File-backed refill from the filesystem.
		s.stats.FileRefills++
		block := s.fsBlocks[page] - 1
		now += s.params.KernelFault.Sample(s.rng)
		now += s.params.BlockLayer.Sample(s.rng)
		var data []byte
		data, now, err = s.fsDev.ReadPage(now, block)
		if err != nil {
			return nil, now, fmt.Errorf("file refill %#x: %w", page, err)
		}
		now += s.params.PageCopy.Sample(s.rng)
		now += s.params.LRUBookkeeping.Sample(s.rng)
		f.data = data
	default:
		// Minor fault: first touch, zero-fill.
		s.stats.MinorFaults++
		now += s.params.MinorFault.Sample(s.rng)
		f.data = make([]byte, PageSize)
	}

	s.frames[page] = f
	f.elem = s.inactive.PushBack(f)
	s.epoch++
	return f.data, now, nil
}

// Discard implements vm.Backing (balloon-freed pages).
func (s *Subsystem) Discard(addr uint64) {
	page := align(addr)
	if f, ok := s.frames[page]; ok {
		s.unlink(f)
		delete(s.frames, page)
		s.epoch++
	}
	if slot, ok := s.swapSlots[page]; ok {
		s.freeSlots = append(s.freeSlots, slot-1)
		delete(s.swapSlots, page)
	}
}

// ensureFrame guarantees a free frame exists, reclaiming a batch if needed.
func (s *Subsystem) ensureFrame(now time.Duration) (time.Duration, error) {
	if len(s.frames) < s.params.FramePages {
		return now, nil
	}
	return s.reclaim(now, s.params.ReclaimBatch)
}

// reclaim evicts up to batch frames using second-chance scanning of the
// inactive list, aging the active list as needed. Swap-out writes are
// asynchronous: they occupy the device but stall the caller only when the
// device falls further behind than ThrottleDepth (writeback throttling).
func (s *Subsystem) reclaim(now time.Duration, batch int) (time.Duration, error) {
	s.stats.Reclaims++
	freed := 0
	// Age the active list so the inactive list has candidates.
	s.rebalance()
	scanBudget := 4 * s.params.FramePages // prevents livelock on unevictable sets
	for freed < batch && scanBudget > 0 {
		elem := s.inactive.Front()
		if elem == nil {
			s.rebalance()
			if s.inactive.Len() == 0 {
				break
			}
			continue
		}
		scanBudget--
		s.stats.Scanned++
		now += s.params.ScanCost
		f := elem.Value.(*frame)
		if f.referenced {
			// Second chance: clear and promote.
			f.referenced = false
			s.promote(f)
			continue
		}
		if !s.evictable(f) {
			// Unevictable pages rotate back to the active list.
			s.promote(f)
			continue
		}
		var err error
		now, err = s.evict(now, f)
		if err != nil {
			return now, err
		}
		freed++
	}
	if freed == 0 {
		return now, fmt.Errorf("%w: %d resident, all unevictable or referenced", ErrOOM, len(s.frames))
	}
	return now, nil
}

// evictable applies the class rules — the heart of *partial* disaggregation.
func (s *Subsystem) evictable(f *frame) bool {
	switch f.class {
	case vm.ClassKernel, vm.ClassMlocked:
		return false
	default:
		return true
	}
}

// evict removes f from DRAM, writing it out as its class requires.
func (s *Subsystem) evict(now time.Duration, f *frame) (time.Duration, error) {
	switch f.class {
	case vm.ClassAnon:
		slot, ok := s.allocSlot()
		if !ok {
			return now, ErrSwapFull
		}
		s.stats.SwapOuts++
		// Asynchronous writeback: the write rides the device's background
		// channel (kswapd) and enters the fault critical path only through
		// writeback throttling when that channel falls too far behind.
		done, err := s.swapDev.WritePageAsync(now, slot, f.data)
		if err != nil {
			return now, fmt.Errorf("swap-out %#x: %w", f.addr, err)
		}
		if lag := done - now; lag > s.params.ThrottleDepth {
			s.stats.Throttles++
			now = done - s.params.ThrottleDepth
		}
		s.swapSlots[f.addr] = slot + 1
	case vm.ClassFile:
		if f.dirty {
			block := s.allocBlock(f.addr)
			s.stats.FileWrites++
			done, err := s.fsDev.WritePageAsync(now, block, f.data)
			if err != nil {
				return now, fmt.Errorf("file writeback %#x: %w", f.addr, err)
			}
			if lag := done - now; lag > s.params.ThrottleDepth {
				s.stats.Throttles++
				now = done - s.params.ThrottleDepth
			}
		} else if _, onDisk := s.fsBlocks[f.addr]; !onDisk {
			// A clean file page with no disk copy yet (first eviction of a
			// boot-warmed page): it must be written once to be refillable.
			block := s.allocBlock(f.addr)
			s.stats.FileWrites++
			if _, err := s.fsDev.WritePageAsync(now, block, f.data); err != nil {
				return now, fmt.Errorf("file writeback %#x: %w", f.addr, err)
			}
		} else {
			s.stats.DroppedFile++
		}
	}
	s.unlink(f)
	delete(s.frames, f.addr)
	s.epoch++
	return now, nil
}

// rebalance moves pages from the active front to the inactive tail until the
// inactive list holds at least a third of resident pages.
func (s *Subsystem) rebalance() {
	target := len(s.frames) / 3
	for s.inactive.Len() < target {
		elem := s.active.Front()
		if elem == nil {
			return
		}
		f := elem.Value.(*frame)
		s.active.Remove(elem)
		f.active = false
		f.referenced = false
		f.elem = s.inactive.PushBack(f)
	}
}

func (s *Subsystem) promote(f *frame) {
	if f.active {
		return
	}
	s.inactive.Remove(f.elem)
	f.active = true
	f.elem = s.active.PushBack(f)
}

func (s *Subsystem) unlink(f *frame) {
	if f.active {
		s.active.Remove(f.elem)
	} else {
		s.inactive.Remove(f.elem)
	}
}

func (s *Subsystem) allocSlot() (uint64, bool) {
	if n := len(s.freeSlots); n > 0 {
		slot := s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
		return slot, true
	}
	if s.nextSlot >= s.swapDev.Pages() {
		return 0, false
	}
	slot := s.nextSlot
	s.nextSlot++
	return slot, true
}

func (s *Subsystem) allocBlock(page uint64) uint64 {
	if b, ok := s.fsBlocks[page]; ok {
		return b - 1
	}
	block := s.nextBlock
	s.nextBlock++
	s.fsBlocks[page] = block + 1
	return block
}

// readahead issues adjacent swap-in reads (disabled when ReadaheadPages is 0,
// matching the paper's configuration). Readahead I/O is asynchronous.
func (s *Subsystem) readahead(now time.Duration, page uint64) {
	for i := 1; i <= s.params.ReadaheadPages; i++ {
		next := page + uint64(i)*PageSize
		slot, ok := s.swapSlots[next]
		if !ok {
			continue
		}
		// Fire and forget: occupies the device, contents land in the swap
		// cache which we do not model separately.
		_, _, _ = s.swapDev.ReadPage(now, slot-1)
	}
}

func (s *Subsystem) classOf(page uint64) vm.PageClass {
	if c, ok := s.classes[page]; ok {
		return c
	}
	return vm.ClassAnon
}

func align(addr uint64) uint64 { return addr &^ (PageSize - 1) }
