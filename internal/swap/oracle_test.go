package swap

import (
	"testing"
	"time"

	"fluidmem/internal/blockdev"
	"fluidmem/internal/clock"
	"fluidmem/internal/vm"
)

// TestSwapAgainstOracle model-checks the swap subsystem with a long random
// sequence of reads, writes, and discards over a mixed-class page population,
// mirrored against a plain in-memory oracle. Any page lost or corrupted
// through swap-out/swap-in, file writeback/refill, or reclaim ordering
// surfaces here.
func TestSwapAgainstOracle(t *testing.T) {
	for _, kind := range []blockdev.Kind{blockdev.KindPmem, blockdev.KindNVMeoF, blockdev.KindSSD} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			runSwapOracle(t, kind, 4000, 96, 48, 0xCAFE)
		})
	}
}

func runSwapOracle(t *testing.T, kind blockdev.Kind, steps, pages, frames int, seed uint64) {
	t.Helper()
	var devParams blockdev.Params
	switch kind {
	case blockdev.KindPmem:
		devParams = blockdev.PmemParams(1 << 30)
	case blockdev.KindNVMeoF:
		devParams = blockdev.NVMeoFParams(1 << 30)
	default:
		devParams = blockdev.SSDParams(1 << 30)
	}
	swapDev, err := blockdev.New(devParams, seed)
	if err != nil {
		t.Fatal(err)
	}
	fsDev, err := blockdev.New(blockdev.SSDParams(1<<30), seed+1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(DefaultParams(frames), swapDev, fsDev, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	rng := clock.NewRand(seed)
	// Mixed classes: mostly anon, some file, a few kernel pages (the kernel
	// set must stay below the frame count or the guest OOMs).
	classes := make([]vm.PageClass, pages)
	for i := range classes {
		switch {
		case i < frames/8:
			classes[i] = vm.ClassKernel
		case i%5 == 0:
			classes[i] = vm.ClassFile
		default:
			classes[i] = vm.ClassAnon
		}
		s.SetClass(addr(i), classes[i])
	}
	oracle := make([][]byte, pages)
	now := time.Duration(0)

	for step := 0; step < steps; step++ {
		page := rng.Intn(pages)
		a := addr(page)
		switch rng.Intn(8) {
		case 0: // discard (balloon) — anon only: a discarded file-backed
			// page legitimately refills from its disk copy (MADV_DONTNEED
			// on a file mapping), so zeroes are not the expected contents.
			if classes[page] != vm.ClassAnon {
				continue
			}
			s.Discard(a)
			oracle[page] = nil
		case 1, 2, 3: // write
			data, done, err := s.Touch(now, a, true)
			if err != nil {
				t.Fatalf("step %d write page %d (%v): %v", step, page, classes[page], err)
			}
			now = done
			if oracle[page] == nil {
				oracle[page] = make([]byte, PageSize)
			}
			off := rng.Intn(PageSize)
			val := byte(rng.Uint64()) | 1
			data[off] = val
			oracle[page][off] = val
		default: // read and spot-check
			data, done, err := s.Touch(now, a, false)
			if err != nil {
				t.Fatalf("step %d read page %d (%v): %v", step, page, classes[page], err)
			}
			now = done
			want := oracle[page]
			for off := 0; off < PageSize; off += 101 {
				var w byte
				if want != nil {
					w = want[off]
				}
				if data[off] != w {
					t.Fatalf("step %d: page %d (%v) offset %d = %#x, oracle %#x",
						step, page, classes[page], off, data[off], w)
				}
			}
		}
		if got := s.ResidentPages(); got > frames {
			t.Fatalf("step %d: resident %d > frames %d", step, got, frames)
		}
		// Kernel pages, once resident, must stay resident.
		for i := 0; i < frames/8; i++ {
			if oracle[i] != nil && classes[i] == vm.ClassKernel {
				if _, resident := s.frames[addr(i)]; !resident {
					t.Fatalf("step %d: kernel page %d evicted", step, i)
				}
			}
		}
	}
	st := s.Stats()
	if st.SwapOuts == 0 || st.MajorFaults == 0 {
		t.Fatalf("workload never exercised swap: %+v", st)
	}
}
