package swap

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"fluidmem/internal/blockdev"
	"fluidmem/internal/vm"
)

func newSubsystem(t *testing.T, frames int, kind blockdev.Kind) *Subsystem {
	t.Helper()
	var params blockdev.Params
	switch kind {
	case blockdev.KindPmem:
		params = blockdev.PmemParams(1 << 30)
	case blockdev.KindNVMeoF:
		params = blockdev.NVMeoFParams(1 << 30)
	default:
		params = blockdev.SSDParams(1 << 30)
	}
	swapDev, err := blockdev.New(params, 1)
	if err != nil {
		t.Fatal(err)
	}
	fsDev, err := blockdev.New(blockdev.SSDParams(4<<30), 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(DefaultParams(frames), swapDev, fsDev, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const base = 0x10000000

func addr(i int) uint64 { return base + uint64(i)*PageSize }

func TestMinorFaultZeroFill(t *testing.T) {
	s := newSubsystem(t, 16, blockdev.KindPmem)
	data, done, err := s.Touch(0, addr(0), false)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("minor fault cost nothing")
	}
	if !bytes.Equal(data, make([]byte, PageSize)) {
		t.Fatal("fresh page not zero-filled")
	}
	if s.Stats().MinorFaults != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestResidentHitIsFree(t *testing.T) {
	s := newSubsystem(t, 16, blockdev.KindPmem)
	if _, _, err := s.Touch(0, addr(0), true); err != nil {
		t.Fatal(err)
	}
	_, done, err := s.Touch(time.Second, addr(0), false)
	if err != nil {
		t.Fatal(err)
	}
	if done != time.Second {
		t.Fatalf("hit cost %v", done-time.Second)
	}
}

func TestSwapOutAndMajorFaultRoundTrip(t *testing.T) {
	s := newSubsystem(t, 4, blockdev.KindPmem)
	// Fill frame 0 with a pattern, then evict it by filling the rest.
	data, now, err := s.Touch(0, addr(0), true)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, bytes.Repeat([]byte{0xAB}, PageSize))
	for i := 1; i < 12; i++ {
		if _, now, err = s.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().SwapOuts == 0 {
		t.Fatal("nothing swapped out under pressure")
	}
	if s.ResidentPages() > 4 {
		t.Fatalf("resident = %d > capacity 4", s.ResidentPages())
	}
	// Page 0 must come back from swap with its contents.
	got, done, err := s.Touch(now, addr(0), false)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB || got[PageSize-1] != 0xAB {
		t.Fatal("swap round trip corrupted page")
	}
	if done <= now {
		t.Fatal("major fault cost nothing")
	}
	if s.Stats().MajorFaults == 0 {
		t.Fatal("major fault not counted")
	}
}

func TestKernelPagesUnevictable(t *testing.T) {
	s := newSubsystem(t, 8, blockdev.KindPmem)
	// 6 kernel pages + churn of anon pages: kernel pages must stay resident.
	for i := 0; i < 6; i++ {
		s.SetClass(addr(i), vm.ClassKernel)
	}
	now := time.Duration(0)
	var err error
	for i := 0; i < 6; i++ {
		if _, now, err = s.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	for i := 100; i < 140; i++ {
		if _, now, err = s.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if _, ok := s.frames[addr(i)]; !ok {
			t.Fatalf("kernel page %d was evicted", i)
		}
	}
	if s.Stats().SwapOuts == 0 {
		t.Fatal("anon churn should have caused swap-outs")
	}
}

func TestMlockedPagesUnevictable(t *testing.T) {
	s := newSubsystem(t, 4, blockdev.KindPmem)
	s.SetClass(addr(0), vm.ClassMlocked)
	now := time.Duration(0)
	var err error
	if _, now, err = s.Touch(now, addr(0), true); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 20; i++ {
		if _, now, err = s.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.frames[addr(0)]; !ok {
		t.Fatal("mlocked page evicted")
	}
}

func TestAllUnevictableOOMs(t *testing.T) {
	s := newSubsystem(t, 4, blockdev.KindPmem)
	for i := 0; i < 8; i++ {
		s.SetClass(addr(i), vm.ClassKernel)
	}
	now := time.Duration(0)
	var err error
	sawOOM := false
	for i := 0; i < 8; i++ {
		if _, now, err = s.Touch(now, addr(i), true); err != nil {
			if !errors.Is(err, ErrOOM) {
				t.Fatalf("err = %v", err)
			}
			sawOOM = true
			break
		}
	}
	if !sawOOM {
		t.Fatal("over-committed unevictable memory did not OOM")
	}
}

func TestFilePagesGoToFilesystemNotSwap(t *testing.T) {
	s := newSubsystem(t, 4, blockdev.KindPmem)
	for i := 0; i < 4; i++ {
		s.SetClass(addr(i), vm.ClassFile)
	}
	now := time.Duration(0)
	var err error
	var data []byte
	if data, now, err = s.Touch(now, addr(0), true); err != nil {
		t.Fatal(err)
	}
	copy(data, bytes.Repeat([]byte{0x3C}, PageSize))
	// Evict with anon churn.
	for i := 10; i < 30; i++ {
		if _, now, err = s.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.FileWrites == 0 {
		t.Fatal("dirty file page never written back to the filesystem")
	}
	// Refill must come from the filesystem with intact contents.
	got, _, err := s.Touch(now, addr(0), false)
	if err != nil {
		t.Fatal(err)
	}
	if got[100] != 0x3C {
		t.Fatal("file refill corrupted page")
	}
	if s.Stats().FileRefills == 0 {
		t.Fatal("file refill not counted")
	}
}

func TestSecondChanceKeepsHotPages(t *testing.T) {
	// A hot page touched between every insertion should survive pressure
	// thanks to the referenced bit, while one-shot pages get evicted.
	s := newSubsystem(t, 8, blockdev.KindPmem)
	now := time.Duration(0)
	var err error
	hot := addr(0)
	if _, now, err = s.Touch(now, hot, true); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 60; i++ {
		if _, now, err = s.Touch(now, hot, false); err != nil {
			t.Fatal(err)
		}
		if _, now, err = s.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if _, resident := s.frames[hot]; !resident {
		t.Fatal("hot page evicted despite constant touches")
	}
}

func TestSwapFull(t *testing.T) {
	swapDev, err := blockdev.New(blockdev.PmemParams(4*PageSize), 1) // 4 slots
	if err != nil {
		t.Fatal(err)
	}
	fsDev, err := blockdev.New(blockdev.SSDParams(1<<30), 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(DefaultParams(4), swapDev, fsDev, 3)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	sawFull := false
	for i := 0; i < 64; i++ {
		if _, now, err = s.Touch(now, addr(i), true); err != nil {
			if !errors.Is(err, ErrSwapFull) {
				t.Fatalf("err = %v", err)
			}
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("tiny swap device never filled")
	}
}

func TestSwapSlotReusedAfterSwapIn(t *testing.T) {
	s := newSubsystem(t, 2, blockdev.KindPmem)
	now := time.Duration(0)
	var err error
	// Cycle pages through swap repeatedly; slot count must not leak.
	for round := 0; round < 20; round++ {
		for i := 0; i < 4; i++ {
			if _, now, err = s.Touch(now, addr(i), true); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.nextSlot > 16 {
		t.Fatalf("slot high-water mark %d: slots leak", s.nextSlot)
	}
}

func TestDiscardFreesFrameAndSlot(t *testing.T) {
	s := newSubsystem(t, 2, blockdev.KindPmem)
	now := time.Duration(0)
	var err error
	for i := 0; i < 4; i++ {
		if _, now, err = s.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	resident := s.ResidentPages()
	slots := len(s.swapSlots)
	if slots == 0 {
		t.Fatal("setup: nothing swapped")
	}
	// Discard one resident and one swapped page.
	for page := range s.frames {
		s.Discard(page)
		break
	}
	for page := range s.swapSlots {
		s.Discard(page)
		break
	}
	if s.ResidentPages() != resident-1 {
		t.Fatalf("resident = %d", s.ResidentPages())
	}
	if len(s.swapSlots) != slots-1 {
		t.Fatalf("swapSlots = %d", len(s.swapSlots))
	}
}

func TestEpochBumpsOnResidencyChange(t *testing.T) {
	s := newSubsystem(t, 2, blockdev.KindPmem)
	e0 := s.Epoch()
	if _, _, err := s.Touch(0, addr(0), true); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() == e0 {
		t.Fatal("epoch unchanged after fault")
	}
	e1 := s.Epoch()
	if _, _, err := s.Touch(0, addr(0), false); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != e1 {
		t.Fatal("epoch changed on a pure hit")
	}
}

func TestDeviceLatencyOrderingVisible(t *testing.T) {
	// Swap-in cost must track the device: pmem < nvmeof < ssd.
	avgMajor := func(kind blockdev.Kind) time.Duration {
		s := newSubsystem(t, 4, kind)
		now := time.Duration(0)
		var err error
		// Prime: 12 anon pages cycling through 4 frames.
		for i := 0; i < 12; i++ {
			if _, now, err = s.Touch(now, addr(i), true); err != nil {
				t.Fatal(err)
			}
		}
		var total time.Duration
		var count int
		for round := 0; round < 30; round++ {
			for i := 0; i < 12; i++ {
				before := s.Stats().MajorFaults
				start := now
				if _, now, err = s.Touch(now, addr(i), false); err != nil {
					t.Fatal(err)
				}
				if s.Stats().MajorFaults > before {
					total += now - start
					count++
				}
				now += 100 * time.Microsecond // think time drains queues
			}
		}
		if count == 0 {
			t.Fatal("no major faults measured")
		}
		return total / time.Duration(count)
	}
	pmem := avgMajor(blockdev.KindPmem)
	nvme := avgMajor(blockdev.KindNVMeoF)
	ssd := avgMajor(blockdev.KindSSD)
	if !(pmem < nvme && nvme < ssd) {
		t.Fatalf("major fault ordering violated: pmem=%v nvmeof=%v ssd=%v", pmem, nvme, ssd)
	}
	// Sanity: the software path keeps even pmem swap-ins tens of µs.
	if pmem < 20*time.Microsecond || pmem > 50*time.Microsecond {
		t.Fatalf("pmem swap-in = %v, want ≈30µs kernel path", pmem)
	}
}

func TestValidation(t *testing.T) {
	swapDev, _ := blockdev.New(blockdev.PmemParams(1<<30), 1)
	fsDev, _ := blockdev.New(blockdev.SSDParams(1<<30), 2)
	if _, err := New(DefaultParams(0), swapDev, fsDev, 1); err == nil {
		t.Fatal("zero frames accepted")
	}
	if _, err := New(DefaultParams(4), nil, fsDev, 1); err == nil {
		t.Fatal("nil swap device accepted")
	}
	if _, err := New(DefaultParams(4), swapDev, nil, 1); err == nil {
		t.Fatal("nil fs device accepted")
	}
}
