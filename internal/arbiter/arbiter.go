// Package arbiter decides how a host's shared DRAM page budget is split
// across its VMs — the control plane that makes FluidMem's resizable local
// buffer (§III, "the local memory buffer can be actively sized up or down")
// earn its keep in a multi-tenant cloud, following the working-set-driven
// reallocation loop of Memtrade and the Maruf & Chowdhury disaggregation
// survey.
//
// Each epoch the host hands the arbiter one VMView per machine: its current
// share plus the window's miss-ratio curve from the internal/hotset ghost
// LRU. The policy is greedy benefit matching: the curve prices what one
// Step-sized slab of extra DRAM is worth to each VM (the best per-slab rate
// of ghost hits any contiguous grant would have absorbed — see SlabRate)
// and, symmetrically, what a slab costs its owner to give up; pages move
// from the flattest donor to the steepest taker while the spread clears the
// hysteresis threshold. Every VM keeps a floor and respects a ceiling, so
// one noisy tenant can neither starve the others nor hoard the pool.
//
// The decision is a pure function of the views — no randomness, no clock —
// so arbiter plans inherit the determinism the shardtest oracle proves for
// the curves themselves: same logical histories, same plans, at any worker
// count or VM interleaving.
package arbiter

import (
	"fmt"
	"sort"
	"time"

	"fluidmem/internal/hotset"
)

// Policy parametrises the greedy reallocator.
type Policy struct {
	// FloorPages is the minimum share any VM can be shrunk to. Must be >= 1:
	// a monitor cannot run with a zero-page LRU.
	FloorPages int
	// CeilPages caps any single VM's share; 0 means no ceiling.
	CeilPages int
	// Step is the slab size in pages moved per donor→taker transfer. Must be
	// >= 1. Smaller steps converge smoother; larger steps react faster.
	Step int
	// MaxMoves bounds the transfers per epoch (0 = one move). The cap keeps
	// a single epoch's resize churn — and its eviction burst — bounded.
	MaxMoves int
	// Hysteresis is the minimum ghost-hit spread (taker's predicted gain
	// minus donor's predicted loss, in hits over the window) before a slab
	// moves. Zero moves on any positive spread, which oscillates when two
	// curves are near-equal; a small positive value keeps the split stable.
	Hysteresis uint64
}

// DefaultPolicy returns a conservative policy for a host whose total budget
// is totalPages across vms machines: floor at 1/8 of an equal share, no
// ceiling, slabs of 1/16 of an equal share, at most 4 moves per epoch, and
// hysteresis of 8 ghost hits.
func DefaultPolicy(totalPages, vms int) Policy {
	if vms < 1 {
		vms = 1
	}
	equal := totalPages / vms
	floor := equal / 8
	if floor < 1 {
		floor = 1
	}
	step := equal / 16
	if step < 1 {
		step = 1
	}
	return Policy{FloorPages: floor, Step: step, MaxMoves: 4, Hysteresis: 8}
}

// Validate rejects unusable policies loudly.
func (p Policy) Validate() error {
	if p.FloorPages < 1 {
		return fmt.Errorf("arbiter: floor %d < 1 page", p.FloorPages)
	}
	if p.Step < 1 {
		return fmt.Errorf("arbiter: step %d < 1 page", p.Step)
	}
	if p.CeilPages != 0 && p.CeilPages < p.FloorPages {
		return fmt.Errorf("arbiter: ceiling %d below floor %d", p.CeilPages, p.FloorPages)
	}
	return nil
}

// VMView is one machine's epoch snapshot as a planner sees it.
type VMView struct {
	// ID names the VM (stable across epochs; used for deterministic
	// tie-breaking, trace args, and plan reporting).
	ID string
	// SharePages is the VM's current local-buffer capacity.
	SharePages int
	// Curve is the window's miss-ratio curve beyond SharePages (cumulative
	// snapshot differences, via hotset.Curve.Sub).
	Curve hotset.Curve
	// WindowFaults counts the VM's faults in the window (reporting only).
	WindowFaults uint64

	// The remaining fields carry per-tenant policy and QoS telemetry for
	// planners that honour them (internal/market). The greedy Policy
	// deliberately ignores all four — it predates per-tenant policies and
	// keeps its PR-5 semantics as the comparison baseline.

	// FloorPages / CeilPages bound this tenant's share (0 = planner default
	// floor / no ceiling).
	FloorPages int
	CeilPages  int
	// SLOTarget is the tenant's p99 fault-latency target in virtual time
	// (0 = no SLO); WindowP99 is the p99 fault latency observed over the
	// closing epoch window, from the merged per-worker trace histograms.
	SLOTarget time.Duration
	WindowP99 time.Duration
}

// Planner is the host's pluggable reallocation policy: one call per epoch,
// views in, plan out. Implementations must be deterministic pure functions
// of the view set plus their own decision history — no clocks, no
// randomness — so host decisions inherit the worker-count and interleaving
// invariance the oracles prove for the views themselves. The greedy Policy
// is the stateless reference implementation; internal/market supplies the
// stateful lease-tracking marketplace.
type Planner interface {
	Plan(views []VMView) (Plan, error)
}

// Plan implements Planner for the greedy policy.
func (p Policy) Plan(views []VMView) (Plan, error) { return p.Decide(views) }

// SlabRate prices one Step-sized slab for a VM already granted `granted`
// extra pages: the best average hits-per-slab over any contiguous extension
// of the curve beyond the granted offset. Plain marginal pricing
// (HitsWithin one more Step) is zero on the step-function curves cyclic
// scans produce — every hit sits at depth span-capacity, so no single slab
// "pays" until the whole gap is granted. Pricing a slab at 1/j of the best
// j-slab extension sees through the cliff while still reporting zero for a
// genuinely flat curve, and decays as grants accumulate (the best extension
// shrinks), so diminishing returns fall out naturally.
func SlabRate(c hotset.Curve, granted, step int) uint64 {
	if c.BucketPages <= 0 {
		return 0
	}
	base := c.HitsWithin(granted)
	span := len(c.Hits) * c.BucketPages
	var best uint64
	for j := 1; granted+j*step <= span+step; j++ {
		rate := (c.HitsWithin(granted+j*step) - base) / uint64(j)
		if rate > best {
			best = rate
		}
	}
	return best
}

// Move is one donor→taker slab transfer.
type Move struct {
	From, To string
	Pages    int
	// PredictedSavings is the taker's window ghost hits the slab would have
	// absorbed, minus the donor's predicted forfeit — the quantity the host
	// checks against realised savings next epoch.
	PredictedSavings uint64
}

// Plan is one epoch's decision: the moves plus the resulting share map.
type Plan struct {
	Moves []Move
	// Shares maps VM ID to its post-plan share. Every input VM appears, so
	// the host can apply the plan with one Resize per changed VM.
	Shares map[string]int
}

// Changed reports the IDs whose share differs from its input view, in
// deterministic (sorted) order.
func (pl Plan) Changed(views []VMView) []string {
	var out []string
	for _, v := range views {
		if pl.Shares[v.ID] != v.SharePages {
			out = append(out, v.ID)
		}
	}
	sort.Strings(out)
	return out
}

// TotalPages sums the plan's shares (budget-conservation checks).
func (pl Plan) TotalPages() int {
	total := 0
	for _, s := range pl.Shares {
		total += s
	}
	return total
}

// Decide computes one epoch's plan from the VM views. The input order does
// not matter: views are canonicalised by ID before any comparison, and ties
// in benefit break by ID, so the plan is a pure deterministic function of
// the set of views. The total share is conserved exactly — every grant is
// funded by an equal donation.
func (p Policy) Decide(views []VMView) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	vs := append([]VMView(nil), views...)
	sort.Slice(vs, func(i, j int) bool { return vs[i].ID < vs[j].ID })
	shares := make(map[string]int, len(vs))
	for _, v := range vs {
		if _, dup := shares[v.ID]; dup {
			return Plan{}, fmt.Errorf("arbiter: duplicate VM ID %q", v.ID)
		}
		if v.SharePages < 1 {
			return Plan{}, fmt.Errorf("arbiter: VM %q share %d < 1", v.ID, v.SharePages)
		}
		shares[v.ID] = v.SharePages
	}
	plan := Plan{Shares: shares}
	if len(vs) < 2 {
		return plan, nil
	}

	moves := p.MaxMoves
	if moves < 1 {
		moves = 1
	}
	for n := 0; n < moves; n++ {
		// Re-price every VM at its CURRENT tentative share. The curve only
		// describes depths beyond the share it was measured at, so a taker
		// that already received slabs this epoch prices its next slab at the
		// deeper offset — diminishing returns fall out naturally.
		taker, donor := -1, -1
		var takerGain, donorLoss uint64
		for i, v := range vs {
			// Re-price at the tentative share: a taker already granted slabs
			// this epoch prices its next slab at the deeper curve offset; a
			// VM already shrunk prices restoration from the curve top.
			granted := shares[v.ID] - v.SharePages
			if granted < 0 {
				granted = 0
			}
			g := SlabRate(v.Curve, granted, p.Step)
			canTake := p.CeilPages == 0 || shares[v.ID]+p.Step <= p.CeilPages
			canDonate := shares[v.ID]-p.Step >= p.FloorPages
			// Donating is priced symmetrically: a VM whose curve says it is
			// already starved (high slab rate) is an expensive donor; a flat
			// curve donates for free.
			l := SlabRate(v.Curve, 0, p.Step)
			// Strict comparisons + ID-sorted iteration: ties break toward
			// the lowest ID, keeping the plan order-independent.
			if canTake && (taker == -1 || g > takerGain) {
				taker, takerGain = i, g
			}
			if canDonate && (donor == -1 || l < donorLoss) {
				donor, donorLoss = i, l
			}
		}
		if taker == -1 || donor == -1 || taker == donor {
			break
		}
		if takerGain < donorLoss || takerGain-donorLoss < p.Hysteresis {
			break
		}
		shares[vs[taker].ID] += p.Step
		shares[vs[donor].ID] -= p.Step
		plan.Moves = append(plan.Moves, Move{
			From:             vs[donor].ID,
			To:               vs[taker].ID,
			Pages:            p.Step,
			PredictedSavings: takerGain - donorLoss,
		})
	}
	return plan, nil
}

// Stats accumulates arbiter activity across epochs for the host's Stats
// surface.
type Stats struct {
	// Epochs counts Decide invocations; Moves the slab transfers they
	// produced; GrantedPages / DonatedPages the page flow (always equal in
	// total — the budget is conserved).
	Epochs       uint64
	Moves        uint64
	GrantedPages uint64
	DonatedPages uint64
	// PredictedSavings sums Move.PredictedSavings; RealizedSavings sums the
	// host's epoch-over-epoch measurement of ghost hits that stopped
	// happening on granted VMs — the feedback that tells an operator whether
	// the curves are honest.
	PredictedSavings uint64
	RealizedSavings  uint64
}

// Observe folds one epoch's plan into the running totals.
func (s *Stats) Observe(pl Plan) {
	s.Epochs++
	for _, mv := range pl.Moves {
		s.Moves++
		s.GrantedPages += uint64(mv.Pages)
		s.DonatedPages += uint64(mv.Pages)
		s.PredictedSavings += mv.PredictedSavings
	}
}
