package arbiter

import (
	"reflect"
	"testing"
	"time"

	"fluidmem/internal/hotset"
)

func steepView(id string, share int) VMView {
	// Heavy reuse just beyond the share boundary: a grant pays off.
	return VMView{ID: id, SharePages: share,
		Curve: hotset.Curve{BucketPages: 4, Hits: []uint64{100, 80, 60, 40}}}
}

func flatView(id string, share int) VMView {
	// Nothing beyond the boundary: donating costs nothing observable.
	return VMView{ID: id, SharePages: share,
		Curve: hotset.Curve{BucketPages: 4, Hits: []uint64{0, 0, 0, 0}}}
}

func TestPolicyValidate(t *testing.T) {
	bad := []Policy{
		{FloorPages: 0, Step: 1},
		{FloorPages: -1, Step: 1},
		{FloorPages: 1, Step: 0},
		{FloorPages: 8, Step: 1, CeilPages: 4},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an unusable policy", p)
		}
		if _, err := p.Decide(nil); err == nil {
			t.Errorf("Decide with policy %+v did not fail", p)
		}
	}
	if err := (Policy{FloorPages: 1, Step: 1}).Validate(); err != nil {
		t.Fatalf("minimal policy rejected: %v", err)
	}
}

func TestDecideRejectsBadViews(t *testing.T) {
	p := Policy{FloorPages: 1, Step: 4}
	if _, err := p.Decide([]VMView{steepView("a", 16), flatView("a", 16)}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	if _, err := p.Decide([]VMView{steepView("a", 0)}); err == nil {
		t.Fatal("zero share accepted")
	}
}

// The canonical skew: one steep VM, one flat VM — pages flow flat → steep,
// conserving the total.
func TestDecideMovesFromFlatToSteep(t *testing.T) {
	p := Policy{FloorPages: 4, Step: 4, MaxMoves: 2, Hysteresis: 8}
	views := []VMView{flatView("cold", 32), steepView("hot", 32)}
	plan, err := p.Decide(views)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 2 {
		t.Fatalf("moves = %+v, want 2", plan.Moves)
	}
	for _, mv := range plan.Moves {
		if mv.From != "cold" || mv.To != "hot" || mv.Pages != 4 {
			t.Fatalf("unexpected move %+v", mv)
		}
		if mv.PredictedSavings == 0 {
			t.Fatal("move with zero predicted savings")
		}
	}
	if plan.Shares["hot"] != 40 || plan.Shares["cold"] != 24 {
		t.Fatalf("shares = %v", plan.Shares)
	}
	if plan.TotalPages() != 64 {
		t.Fatalf("budget not conserved: %d", plan.TotalPages())
	}
	if got := plan.Changed(views); !reflect.DeepEqual(got, []string{"cold", "hot"}) {
		t.Fatalf("Changed = %v", got)
	}
}

// Equal curves must not churn: hysteresis holds the split still.
func TestDecideHysteresisPreventsChurn(t *testing.T) {
	p := Policy{FloorPages: 4, Step: 4, MaxMoves: 4, Hysteresis: 8}
	plan, err := p.Decide([]VMView{steepView("a", 32), steepView("b", 32)})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 {
		t.Fatalf("equal curves produced moves: %+v", plan.Moves)
	}
}

// The donor stops at its floor even when its curve stays flat.
func TestDecideRespectsFloor(t *testing.T) {
	p := Policy{FloorPages: 24, Step: 8, MaxMoves: 16, Hysteresis: 0}
	plan, err := p.Decide([]VMView{flatView("cold", 32), steepView("hot", 32)})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shares["cold"] != 24 {
		t.Fatalf("donor shrunk through its floor: %v", plan.Shares)
	}
	if plan.TotalPages() != 64 {
		t.Fatalf("budget not conserved: %d", plan.TotalPages())
	}
}

// The taker stops at its ceiling even with appetite left.
func TestDecideRespectsCeiling(t *testing.T) {
	p := Policy{FloorPages: 4, Step: 8, MaxMoves: 16, CeilPages: 40, Hysteresis: 0}
	plan, err := p.Decide([]VMView{flatView("cold", 32), steepView("hot", 32)})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shares["hot"] > 40 {
		t.Fatalf("taker grew past its ceiling: %v", plan.Shares)
	}
}

// A granted taker re-prices its next slab at the deeper curve offset, so
// appetite decays as grants accumulate (diminishing returns).
func TestDecideDiminishingReturns(t *testing.T) {
	p := Policy{FloorPages: 4, Step: 4, MaxMoves: 16, Hysteresis: 50}
	// Curve worth 100 hits in the first slab, 10 in the second: the first
	// move clears hysteresis, the second must not.
	hot := VMView{ID: "hot", SharePages: 32,
		Curve: hotset.Curve{BucketPages: 4, Hits: []uint64{100, 10, 0, 0}}}
	plan, err := p.Decide([]VMView{flatView("cold", 32), hot})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 1 {
		t.Fatalf("moves = %+v, want exactly 1", plan.Moves)
	}
}

// Plans are a pure function of the view SET: input order must not matter.
func TestDecideOrderIndependent(t *testing.T) {
	p := Policy{FloorPages: 4, Step: 4, MaxMoves: 4, Hysteresis: 8}
	views := []VMView{
		steepView("a", 32), flatView("b", 32),
		{ID: "c", SharePages: 32, Curve: hotset.Curve{BucketPages: 4, Hits: []uint64{20, 5, 0, 0}}},
	}
	ref, err := p.Decide(views)
	if err != nil {
		t.Fatal(err)
	}
	perms := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}}
	for _, perm := range perms {
		shuffled := make([]VMView, len(views))
		for i, j := range perm {
			shuffled[i] = views[j]
		}
		got, err := p.Decide(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("order-dependent plan: perm %v gave %+v, want %+v", perm, got, ref)
		}
	}
}

// A single VM never moves pages; fewer than two views is a no-op plan.
func TestDecideSingleVM(t *testing.T) {
	p := Policy{FloorPages: 4, Step: 4, MaxMoves: 4}
	plan, err := p.Decide([]VMView{steepView("only", 32)})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 || plan.Shares["only"] != 32 {
		t.Fatalf("single-VM plan moved pages: %+v", plan)
	}
}

func TestDefaultPolicyIsValid(t *testing.T) {
	for _, c := range []struct{ total, vms int }{{1024, 2}, {64, 8}, {4, 4}, {1, 1}, {100, 0}} {
		p := DefaultPolicy(c.total, c.vms)
		if err := p.Validate(); err != nil {
			t.Errorf("DefaultPolicy(%d, %d) invalid: %v", c.total, c.vms, err)
		}
	}
}

func TestStatsObserve(t *testing.T) {
	var s Stats
	s.Observe(Plan{Moves: []Move{
		{From: "a", To: "b", Pages: 4, PredictedSavings: 10},
		{From: "a", To: "b", Pages: 4, PredictedSavings: 5},
	}})
	s.Observe(Plan{})
	if s.Epochs != 2 || s.Moves != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.GrantedPages != 8 || s.DonatedPages != 8 || s.PredictedSavings != 15 {
		t.Fatalf("stats = %+v", s)
	}
}

// Policy must satisfy the Planner seam with Decide semantics, and planners
// must be swappable behind the interface.
func TestPolicyImplementsPlanner(t *testing.T) {
	var pl Planner = Policy{FloorPages: 1, Step: 2, MaxMoves: 2, Hysteresis: 1}
	views := []VMView{
		{ID: "a", SharePages: 8, Curve: hotset.Curve{BucketPages: 2, Hits: []uint64{50, 10}}},
		{ID: "b", SharePages: 8, Curve: hotset.Curve{BucketPages: 2, Hits: []uint64{0, 0}}},
	}
	got, err := pl.Plan(views)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Policy{FloorPages: 1, Step: 2, MaxMoves: 2, Hysteresis: 1}.Decide(views)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Plan diverged from Decide:\n got %+v\nwant %+v", got, want)
	}
	// The greedy policy ignores the per-tenant policy fields: identical
	// curves with and without floors/ceilings/SLOs yield identical plans.
	for i := range views {
		views[i].FloorPages, views[i].CeilPages = 7, 9
		views[i].SLOTarget, views[i].WindowP99 = time.Microsecond, time.Second
	}
	again, err := pl.Plan(views)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("greedy policy changed behaviour on per-tenant policy fields")
	}
}
