package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"fluidmem/internal/core"
	"fluidmem/internal/kvstore/ramcloud"
)

// ParallelRow is one wall-clock point of the parallel data-plane scaling
// matrix: the multi-goroutine engine at a given shard count under a given
// GOMAXPROCS, driven flat out through the steady-state miss+evict+writeback
// loop. Wall rates are machine-dependent; the ratchet gate deliberately
// ignores them (it only scans "faults_per_sec" rows) and they are committed
// to the artifact purely as a provenance record of the measuring machine.
type ParallelRow struct {
	// Shards is the executor-goroutine count.
	Shards int `json:"shards"`
	// Gomaxprocs is the Go scheduler's thread budget during the run.
	Gomaxprocs int `json:"gomaxprocs"`
	// Faults is the measured-phase fault count.
	Faults uint64 `json:"faults"`
	// WallElapsed and WallThroughput measure real (host) time.
	WallElapsed    time.Duration `json:"wall_elapsed_ns"`
	WallThroughput float64       `json:"wall_faults_per_sec"`
	// Speedup is WallThroughput over the serial monitor's wall rate on the
	// same loop. Only meaningful when Cores >= 2; on a single core the
	// parallel engine pays sequencing overhead with no parallelism to win
	// it back.
	Speedup float64 `json:"speedup_vs_serial"`
	// AllocsPerFault re-checks the zero-allocation property under load.
	AllocsPerFault float64 `json:"allocs_per_fault"`
}

// ParallelResult is the parallel-engine scaling experiment. The serial
// reference row is the single-thread virtual-time monitor on the identical
// workload: its virtual throughput is bit-deterministic per seed, so it is
// the row the bench-ratchet gate pins; its wall rate is the speedup
// denominator. The paralleltest oracle separately proves the engines agree
// logically — this table only measures how fast the parallel one goes.
type ParallelResult struct {
	Pages    int    `json:"pages"`
	Capacity int    `json:"capacity"`
	Ops      int    `json:"ops"`
	Seed     uint64 `json:"seed"`
	// Cores is runtime.NumCPU() on the measuring machine: the context every
	// wall rate and speedup must be read in.
	Cores int `json:"cores"`
	// SerialWorkers is the reference monitor's virtual pipeline width.
	SerialWorkers int `json:"serial_workers"`
	// SerialFaults/SerialElapsed/SerialThroughput are the virtual-time
	// reference: deterministic, ratchet-checked.
	SerialFaults     uint64        `json:"serial_faults"`
	SerialElapsed    time.Duration `json:"serial_elapsed_ns"`
	SerialThroughput float64       `json:"faults_per_sec"`
	// SerialWall* are the wall-clock denominator for Speedup.
	SerialWallElapsed    time.Duration `json:"serial_wall_elapsed_ns"`
	SerialWallThroughput float64       `json:"serial_wall_faults_per_sec"`
	Rows                 []ParallelRow `json:"rows"`
}

// ParallelShardCounts is the swept executor count.
func ParallelShardCounts() []int { return []int{1, 2, 4} }

// ParallelGomaxprocs is the swept scheduler width. Values above NumCPU are
// legal (more runnable threads than cores) and show the engine staying live
// — the cooperative yields in the spin waits — even when oversubscribed.
func ParallelGomaxprocs() []int { return []int{1, 2, 4} }

const parallelBase = 0x7e00_0000_0000

// RunParallel measures the scaling matrix.
func RunParallel(opts Options) (*ParallelResult, error) {
	const pages = 512
	const capacity = 256 // half the working set: every steady-state touch misses and evicts
	ops := 400_000
	if opts.Quick {
		ops = 50_000
	}
	res := &ParallelResult{
		Pages:         pages,
		Capacity:      capacity,
		Ops:           ops,
		Seed:          opts.Seed,
		Cores:         runtime.NumCPU(),
		SerialWorkers: 4,
	}
	if err := runParallelSerialRef(res); err != nil {
		return nil, err
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, shards := range ParallelShardCounts() {
		for _, gmp := range ParallelGomaxprocs() {
			runtime.GOMAXPROCS(gmp)
			row, err := runParallelRow(res, shards, gmp)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				return nil, err
			}
			if res.SerialWallThroughput > 0 {
				row.Speedup = row.WallThroughput / res.SerialWallThroughput
			}
			res.Rows = append(res.Rows, *row)
		}
	}
	return res, nil
}

// runParallelSerialRef runs the reference loop through the single-thread
// virtual-time monitor: dirty touches cycling a working set twice the LRU
// capacity, so every measured fault is a store miss with a dirty eviction
// behind it — the same loop hotpath-probe and the allocation tests pin.
func runParallelSerialRef(res *ParallelResult) error {
	store := ramcloud.New(ramcloud.DefaultParams(), res.Seed+9)
	cfg := core.DefaultConfig(store, res.Capacity)
	cfg.Workers = res.SerialWorkers
	cfg.Seed = res.Seed
	m, err := core.NewMonitor(cfg, nil, "bench-parallel-serial")
	if err != nil {
		return err
	}
	if _, err := m.RegisterRange(parallelBase, uint64(res.Pages)*core.PageSize, 1); err != nil {
		return err
	}
	var now time.Duration
	i := 0
	touch := func() error {
		_, done, err := m.Touch(now, parallelBase+uint64(i%res.Pages)*core.PageSize, true)
		now = done
		i++
		return err
	}
	for k := 0; k < 3*res.Pages; k++ { // warm to steady state
		if err := touch(); err != nil {
			return err
		}
	}
	faultsBefore := m.Stats().Faults
	start := now
	wallStart := time.Now()
	for k := 0; k < res.Ops; k++ {
		if err := touch(); err != nil {
			return err
		}
	}
	res.SerialWallElapsed = time.Since(wallStart)
	res.SerialFaults = m.Stats().Faults - faultsBefore
	res.SerialElapsed = now - start
	if res.SerialElapsed > 0 {
		res.SerialThroughput = float64(res.SerialFaults) / res.SerialElapsed.Seconds()
	}
	if res.SerialWallElapsed > 0 {
		res.SerialWallThroughput = float64(res.SerialFaults) / res.SerialWallElapsed.Seconds()
	}
	return nil
}

// runParallelRow runs the identical loop through the multi-goroutine engine.
// The onData sink is live so delivery stays on the measured path.
func runParallelRow(res *ParallelResult, shards, gmp int) (*ParallelRow, error) {
	var sink uint64
	store := ramcloud.New(ramcloud.DefaultParams(), res.Seed+9)
	cfg := core.DefaultConfig(store, res.Capacity)
	cfg.Workers = shards
	cfg.Seed = res.Seed
	p, err := core.NewParallel(cfg, nil, "bench-parallel",
		func(shard int, ticket, addr uint64, data []byte) { sink += uint64(len(data)) })
	if err != nil {
		return nil, err
	}
	defer p.Close()
	if err := p.RegisterRange(parallelBase, uint64(res.Pages)*core.PageSize, 1); err != nil {
		return nil, err
	}
	i := 0
	touch := func() error {
		err := p.Touch(parallelBase+uint64(i%res.Pages)*core.PageSize, true)
		i++
		return err
	}
	for k := 0; k < 3*res.Pages; k++ { // warm to steady state
		if err := touch(); err != nil {
			return nil, err
		}
	}
	if err := p.Drain(); err != nil {
		return nil, err
	}
	faultsBefore := p.Stats().Faults
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	wallStart := time.Now()
	for k := 0; k < res.Ops; k++ {
		if err := touch(); err != nil {
			return nil, err
		}
	}
	if err := p.Drain(); err != nil { // include the tail flush in the wall time
		return nil, err
	}
	wall := time.Since(wallStart)
	runtime.ReadMemStats(&after)
	row := &ParallelRow{
		Shards:      shards,
		Gomaxprocs:  gmp,
		Faults:      p.Stats().Faults - faultsBefore,
		WallElapsed: wall,
	}
	if wall > 0 {
		row.WallThroughput = float64(row.Faults) / wall.Seconds()
	}
	if row.Faults > 0 {
		row.AllocsPerFault = float64(after.Mallocs-before.Mallocs) / float64(row.Faults)
	}
	return row, nil
}

// JSON emits the BENCH_parallel.json artifact.
func (r *ParallelResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render prints the scaling matrix.
func (r *ParallelResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel data plane — %d dirty faults over %d pages, capacity %d, RAMCloud, %d core(s)\n",
		r.Ops, r.Pages, r.Capacity, r.Cores)
	fmt.Fprintf(&b, "%-22s %10s %14s %16s %9s %13s\n",
		"config", "faults", "elapsed", "wall-faults/sec", "speedup", "allocs/fault")
	fmt.Fprintf(&b, "%-22s %10d %14v %16.0f %9s %13s\n",
		fmt.Sprintf("serial w=%d (virt ref)", r.SerialWorkers), r.SerialFaults,
		r.SerialWallElapsed.Round(time.Millisecond), r.SerialWallThroughput, "1.00x", "-")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %10d %14v %16.0f %8.2fx %13.3f\n",
			fmt.Sprintf("parallel s=%d gmp=%d", row.Shards, row.Gomaxprocs), row.Faults,
			row.WallElapsed.Round(time.Millisecond), row.WallThroughput, row.Speedup, row.AllocsPerFault)
	}
	fmt.Fprintf(&b, "virtual reference: %.0f faults/sec over %v (deterministic, ratchet-pinned)\n",
		r.SerialThroughput, r.SerialElapsed.Round(time.Microsecond))
	if r.Cores < 2 {
		b.WriteString("note: single-core host — speedups reflect sequencing overhead only; the ≥2.5x target applies on ≥2 cores\n")
	}
	return b.String()
}
