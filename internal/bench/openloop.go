package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"fluidmem/internal/loadgen"
)

// This experiment is the open-loop scenario matrix (DESIGN.md §17): each
// built-in datacenter traffic scenario (diurnal day/night populations, a
// flash-crowd step, tenant churn) is replayed under each budget planner at a
// sweep of offered-load scales, and every cell reports offered load vs
// goodput and sojourn-latency percentiles (arrival → service completion,
// queueing included — the number a closed-loop bench structurally cannot
// measure, because closed-loop clients slow down with the system).
//
// The headline is the knee of each (scenario, planner) curve: the largest
// offered-load scale whose p99 sojourn still meets the scenario target.
// Past the knee, offered load keeps rising while goodput collapses — and the
// planners visibly move the knee (the arbiter sustains several times the
// static split's offered load on the diurnal mix). Everything is virtual
// time, so every cell is bit-deterministic per seed.

// OpenLoopBenchConfig scales the scenario matrix.
type OpenLoopBenchConfig struct {
	Scenarios []string          `json:"scenarios"`
	Planners  []loadgen.Planner `json:"planners"`
	// Scales multiplies every tenant curve per cell — the offered-load
	// sweep; must be ascending for the knee search.
	Scales []float64 `json:"scales"`
	Seed   uint64    `json:"seed"`
}

// DefaultOpenLoopBenchConfig sizes the matrix: the full run sweeps all three
// scenarios × all three planners × five scales; -quick keeps one below-knee
// and one past-knee scale on two scenarios × two planners.
func DefaultOpenLoopBenchConfig(opts Options) OpenLoopBenchConfig {
	cfg := OpenLoopBenchConfig{
		Scenarios: loadgen.ScenarioNames(),
		Planners:  loadgen.Planners(),
		Scales:    []float64{0.5, 1, 2, 4, 8},
		Seed:      opts.Seed,
	}
	if opts.Quick {
		cfg.Scenarios = []string{"diurnal", "flashcrowd"}
		cfg.Planners = []loadgen.Planner{loadgen.PlannerStatic, loadgen.PlannerArbiter}
		cfg.Scales = []float64{1, 8}
	}
	return cfg
}

// OpenLoopRow is one (scenario, planner, scale) cell.
type OpenLoopRow struct {
	Scenario string  `json:"scenario"`
	Planner  string  `json:"planner"`
	Scale    float64 `json:"scale"`
	// OfferedPerSec / GoodputPerSec are the open-loop headline pair: ops
	// offered per second of virtual time, and ops completing within the
	// scenario's sojourn target per second.
	OfferedPerSec float64 `json:"offered_per_sec"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	// Sojourn percentiles: arrival to service completion, queueing included.
	SojournP50 time.Duration `json:"sojourn_p50_ns"`
	SojournP99 time.Duration `json:"sojourn_p99_ns"`
	SojournMax time.Duration `json:"sojourn_max_ns"`
	// QueueMax is the deepest per-tenant queue observed; Backlog how far the
	// busiest tenant ran past the horizon to serve the offered load.
	QueueMax int           `json:"queue_max"`
	Backlog  time.Duration `json:"backlog_ns"`
	// Epochs / Moves count planner activity; SLO fields aggregate the
	// per-tenant fault-latency SLO windows.
	Epochs        uint64 `json:"epochs"`
	Moves         uint64 `json:"moves"`
	SLOWindows    uint64 `json:"slo_windows"`
	SLOViolations uint64 `json:"slo_violations"`
	// MetTarget marks the cell as below the knee (p99 sojourn ≤ target).
	MetTarget bool `json:"met_target"`
}

// OpenLoopKnee summarises one (scenario, planner) load-sweep curve.
type OpenLoopKnee struct {
	Scenario string `json:"scenario"`
	Planner  string `json:"planner"`
	// KneeScale is the largest swept scale whose p99 sojourn met the
	// target (0 when even the smallest scale missed); KneeOfferedPerSec and
	// KneeGoodputPerSec are that cell's loads.
	KneeScale         float64 `json:"knee_scale"`
	KneeOfferedPerSec float64 `json:"knee_offered_per_sec"`
	KneeGoodputPerSec float64 `json:"knee_goodput_per_sec"`
	// PeakGoodputPerSec is the best goodput anywhere on the sweep, and
	// Visible whether the sweep brackets the knee (some scale met the
	// target AND some scale missed it).
	PeakGoodputPerSec float64 `json:"peak_goodput_per_sec"`
	Visible           bool    `json:"knee_visible"`
}

// OpenLoopResult is the scenario-matrix artifact (BENCH_openloop.json).
type OpenLoopResult struct {
	Config OpenLoopBenchConfig `json:"config"`
	// P99TargetNs echoes the scenarios' sojourn target.
	P99Target time.Duration  `json:"p99_target_ns"`
	Rows      []OpenLoopRow  `json:"rows"`
	Knees     []OpenLoopKnee `json:"knees"`
	// AllKneesVisible is the acceptance headline: every (scenario, planner)
	// sweep brackets its knee.
	AllKneesVisible bool `json:"all_knees_visible"`
}

// RunOpenLoop runs the scenario × planner × scale matrix.
func RunOpenLoop(opts Options) (*OpenLoopResult, error) {
	cfg := DefaultOpenLoopBenchConfig(opts)
	res := &OpenLoopResult{Config: cfg, AllKneesVisible: true}
	for _, name := range cfg.Scenarios {
		for _, planner := range cfg.Planners {
			knee := OpenLoopKnee{Scenario: name, Planner: string(planner)}
			sawMiss := false
			for _, scale := range cfg.Scales {
				scen, err := loadgen.NamedScenario(name)
				if err != nil {
					return nil, err
				}
				res.P99Target = scen.P99Target
				rep, err := loadgen.Run(loadgen.Config{
					Scenario:  scen,
					Planner:   planner,
					Seed:      cfg.Seed,
					RateScale: scale,
				})
				if err != nil {
					return nil, fmt.Errorf("bench: openloop %s/%s x%g: %w", name, planner, scale, err)
				}
				row := OpenLoopRow{
					Scenario:      name,
					Planner:       string(planner),
					Scale:         scale,
					OfferedPerSec: rep.OfferedPerSec,
					GoodputPerSec: rep.GoodputPerSec,
					SojournP50:    rep.SojournP50,
					SojournP99:    rep.SojournP99,
					SojournMax:    rep.SojournMax,
					QueueMax:      rep.QueueMax,
					Backlog:       rep.Backlog,
					Epochs:        rep.Epochs,
					Moves:         rep.Moves,
					MetTarget:     rep.SojournP99 <= scen.P99Target,
				}
				for _, tr := range rep.Tenants {
					row.SLOWindows += tr.SLOWindows
					row.SLOViolations += tr.SLOViolations
				}
				res.Rows = append(res.Rows, row)
				if row.MetTarget {
					knee.KneeScale = scale
					knee.KneeOfferedPerSec = row.OfferedPerSec
					knee.KneeGoodputPerSec = row.GoodputPerSec
				} else {
					sawMiss = true
				}
				if row.GoodputPerSec > knee.PeakGoodputPerSec {
					knee.PeakGoodputPerSec = row.GoodputPerSec
				}
			}
			knee.Visible = knee.KneeScale > 0 && sawMiss
			if !knee.Visible {
				res.AllKneesVisible = false
			}
			res.Knees = append(res.Knees, knee)
		}
	}
	return res, nil
}

// Validate guards the artifact: the matrix must compare at least two
// scenarios and two planners, every sweep must bracket its knee (a sweep
// that never saturates — or starts saturated — measures nothing about the
// knee), and planner epochs must actually run on the planner rows.
func (r *OpenLoopResult) Validate() error {
	if len(r.Config.Scenarios) < 2 || len(r.Config.Planners) < 2 {
		return fmt.Errorf("bench: openloop matrix too small: %d scenarios × %d planners",
			len(r.Config.Scenarios), len(r.Config.Planners))
	}
	if len(r.Rows) == 0 {
		return fmt.Errorf("bench: openloop result has no rows")
	}
	for _, k := range r.Knees {
		if !k.Visible {
			return fmt.Errorf("bench: openloop %s/%s sweep does not bracket its knee (knee scale %g)",
				k.Scenario, k.Planner, k.KneeScale)
		}
	}
	for _, row := range r.Rows {
		if row.OfferedPerSec <= 0 {
			return fmt.Errorf("bench: openloop %s/%s x%g offered no load", row.Scenario, row.Planner, row.Scale)
		}
		if row.GoodputPerSec > row.OfferedPerSec {
			return fmt.Errorf("bench: openloop %s/%s x%g goodput exceeds offered load", row.Scenario, row.Planner, row.Scale)
		}
		if row.Planner != string(loadgen.PlannerStatic) && row.Epochs == 0 {
			return fmt.Errorf("bench: openloop %s/%s x%g ran zero planner epochs", row.Scenario, row.Planner, row.Scale)
		}
	}
	return nil
}

// JSON emits the machine-readable artifact, refusing one that fails Validate.
func (r *OpenLoopResult) JSON() ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(r, "", "  ")
}

// Render prints the matrix and knee summary as paper-style tables.
func (r *OpenLoopResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Open-loop scenario matrix — %d scenarios × %d planners × scales %v, sojourn target %s (seed %d)\n",
		len(r.Config.Scenarios), len(r.Config.Planners), r.Config.Scales, r.P99Target, r.Config.Seed)
	fmt.Fprintf(&b, "%-11s %-8s %6s %11s %11s %10s %10s %7s %11s %6s\n",
		"scenario", "planner", "scale", "offered/s", "goodput/s", "soj-p50", "soj-p99", "q-max", "backlog", "knee")
	for _, row := range r.Rows {
		mark := "past"
		if row.MetTarget {
			mark = "ok"
		}
		fmt.Fprintf(&b, "%-11s %-8s %6.2g %11.0f %11.0f %10s %10s %7d %11s %6s\n",
			row.Scenario, row.Planner, row.Scale, row.OfferedPerSec, row.GoodputPerSec,
			row.SojournP50.Round(time.Microsecond), row.SojournP99.Round(time.Microsecond),
			row.QueueMax, row.Backlog.Round(time.Microsecond), mark)
	}
	fmt.Fprintf(&b, "\nknee of curve (largest scale with p99 sojourn ≤ %s):\n", r.P99Target)
	fmt.Fprintf(&b, "%-11s %-8s %10s %14s %14s %14s\n",
		"scenario", "planner", "knee-scale", "knee-offered/s", "knee-goodput/s", "peak-goodput/s")
	for _, k := range r.Knees {
		fmt.Fprintf(&b, "%-11s %-8s %10.2g %14.0f %14.0f %14.0f\n",
			k.Scenario, k.Planner, k.KneeScale, k.KneeOfferedPerSec, k.KneeGoodputPerSec, k.PeakGoodputPerSec)
	}
	if r.AllKneesVisible {
		fmt.Fprintf(&b, "every sweep brackets its knee\n")
	} else {
		fmt.Fprintf(&b, "WARNING: some sweep does not bracket its knee\n")
	}
	return b.String()
}
