package bench

import "testing"

// TestWritebackCrossover pins the PR's two acceptance criteria on the
// reduced-scale run: batched MultiPut flushes must strictly beat per-page
// synchronous Puts on fault throughput, and the dirty-aware elisions must
// remove at least 30% of the store writes the batched row still ships.
func TestWritebackCrossover(t *testing.T) {
	res, err := RunWriteback(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(res.Rows))
	}
	perPage, batched, elide := res.Rows[0], res.Rows[1], res.Rows[2]

	if batched.Throughput <= perPage.Throughput {
		t.Errorf("MultiPut batching did not improve throughput: %.0f <= %.0f faults/sec",
			batched.Throughput, perPage.Throughput)
	}
	if batched.MultiPuts == 0 {
		t.Errorf("batched row never issued a MultiPut: %+v", batched)
	}
	if perPage.MultiPuts != 0 {
		t.Errorf("per-page row issued %d MultiPuts; writes should be synchronous", perPage.MultiPuts)
	}

	// The elision row replays the identical op stream, so every store write
	// it avoids is measured against the same eviction pressure.
	if elide.StorePuts > batched.StorePuts*7/10 {
		t.Errorf("elide+drop kept %d of %d store puts; need a >=30%% drop",
			elide.StorePuts, batched.StorePuts)
	}
	if elide.ZeroElided == 0 || elide.CleanDropped == 0 {
		t.Errorf("elision row never exercised both elisions: %+v", elide)
	}
	if batched.ZeroElided != 0 || batched.CleanDropped != 0 {
		t.Errorf("batched row elided with the feature off: %+v", batched)
	}
	// Elision must not cost throughput either: the third row should be at
	// least as fast as per-page writes (in practice faster than batched too,
	// since elided evictions skip the write path entirely).
	if elide.Throughput <= perPage.Throughput {
		t.Errorf("elide+drop slower than per-page puts: %.0f <= %.0f faults/sec",
			elide.Throughput, perPage.Throughput)
	}
}

// TestWritebackJSONRoundTrip keeps the -json artifact well-formed.
func TestWritebackJSONRoundTrip(t *testing.T) {
	res, err := RunWriteback(Options{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty JSON artifact")
	}
}
