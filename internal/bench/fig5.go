package bench

import (
	"fmt"
	"strings"
	"time"

	"fluidmem"
	"fluidmem/internal/blockdev"
	"fluidmem/internal/mongodb"
	"fluidmem/internal/stats"
	"fluidmem/internal/workload/ycsb"
)

// Fig5Config scales the MongoDB/YCSB experiment. The paper: 1 GB local DRAM,
// a ≈5 GB dataset on local SSD, WiredTiger cache sizes of 1–3 GB, YCSB
// workload C. The scaled default divides everything by 256.
type Fig5Config struct {
	// LocalBytes is the guest's local DRAM budget.
	LocalBytes uint64
	// DatasetRecords is the number of 1 KB records on disk.
	DatasetRecords int
	// CacheSizes lists WiredTiger cache sizes to sweep.
	CacheSizes []uint64
	// Operations is YCSB reads per run.
	Operations int
	// ZipfTheta is the key-distribution skew. The scaled dataset has far
	// fewer records than the paper's 5 M, so a slightly lower skew keeps the
	// cache-size sweep meaningful (hit rate grows with cache, as in the
	// paper's Figure 5).
	ZipfTheta float64
	Seed      uint64
}

// DefaultFig5Config returns the scaled recipe: 4 MB DRAM, 20 MB dataset,
// caches of 1×, 2×, and 3× DRAM.
func DefaultFig5Config(opts Options) Fig5Config {
	cfg := Fig5Config{
		LocalBytes:     4 << 20,
		DatasetRecords: 20 << 10, // 20 Mi of 1 KB records ≈ 20 MB
		CacheSizes:     []uint64{4 << 20, 8 << 20, 12 << 20},
		Operations:     150000,
		ZipfTheta:      0.6,
		Seed:           opts.Seed,
	}
	if opts.Quick {
		cfg.LocalBytes = 1 << 20
		cfg.DatasetRecords = 4 << 10
		cfg.CacheSizes = []uint64{1 << 20, 2 << 20}
		cfg.Operations = 4000
	}
	return cfg
}

// Fig5Series is one (system, cache size) time course.
type Fig5Series struct {
	System     string
	CacheBytes uint64
	Result     *ycsb.Result
	Stats      mongodb.Stats
}

// Fig5Result reproduces Figure 5: read-latency time courses for MongoDB on
// swap (NVMeoF) vs FluidMem (RAMCloud) across cache sizes.
type Fig5Result struct {
	Config Fig5Config
	Series []Fig5Series
}

// Fig5Systems is the paper's two-way comparison for this experiment.
func Fig5Systems() []SystemConfig {
	return []SystemConfig{
		{Label: "Swap NVMeoF", Mode: fluidmem.ModeSwap, SwapDev: fluidmem.SwapNVMeoF},
		{Label: "FluidMem RAMCloud", Mode: fluidmem.ModeFluidMem, Backend: fluidmem.BackendRAMCloud},
	}
}

// RunFig5 sweeps cache sizes for both systems.
func RunFig5(opts Options) (*Fig5Result, error) {
	cfg := DefaultFig5Config(opts)
	out := &Fig5Result{Config: cfg}
	for _, sys := range Fig5Systems() {
		for _, cache := range cfg.CacheSizes {
			series, err := runFig5Cell(sys, cfg, cache)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s cache %d MB: %w", sys.Label, cache>>20, err)
			}
			out.Series = append(out.Series, *series)
		}
	}
	return out, nil
}

func runFig5Cell(sys SystemConfig, cfg Fig5Config, cacheBytes uint64) (*Fig5Series, error) {
	// Guest address space: the cache plus OS plus slack. The VM is rebooted
	// per configuration, as the paper does between tests.
	guestBytes := cacheBytes*2 + cfg.LocalBytes
	m, err := newMachine(sys, cfg.LocalBytes, guestBytes, true, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// MongoDB's data files live on a local SSD in every configuration.
	datasetBytes := uint64(cfg.DatasetRecords) * mongodb.RecordBytes
	disk, err := blockdev.New(blockdev.SSDParams(datasetBytes*2), cfg.Seed+301)
	if err != nil {
		return nil, err
	}
	mcfg := mongodb.DefaultConfig(cfg.DatasetRecords, cacheBytes)
	mcfg.Seed = cfg.Seed
	store, now, err := mongodb.Open(m.Now(), m.VM(), disk, mcfg)
	if err != nil {
		return nil, err
	}
	ycfg := ycsb.DefaultConfig(cfg.DatasetRecords, cfg.Operations)
	ycfg.ZipfTheta = cfg.ZipfTheta
	ycfg.Seed = cfg.Seed
	res, _, err := ycsb.Run(now, store, ycfg)
	if err != nil {
		return nil, err
	}
	return &Fig5Series{
		System:     sys.Label,
		CacheBytes: cacheBytes,
		Result:     res,
		Stats:      store.Stats(),
	}, nil
}

// Mean returns a series' average read latency (test hook).
func (r *Fig5Result) Mean(system string, cacheBytes uint64) (time.Duration, bool) {
	for _, s := range r.Series {
		if s.System == system && s.CacheBytes == cacheBytes {
			return s.Result.Latencies.Mean(), true
		}
	}
	return 0, false
}

// Render prints averages per configuration plus a down-sampled time course,
// mirroring the figure's two panels.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: YCSB-C 1 KB read latency, MongoDB/WiredTiger (%d records, %d MB local DRAM)\n",
		r.Config.DatasetRecords, r.Config.LocalBytes>>20)
	fmt.Fprintf(&b, "%-20s %12s %12s %12s %12s %10s\n",
		"System", "cache MB", "avg µs", "p95 µs", "stdev µs", "hit rate")
	for _, s := range r.Series {
		hitRate := float64(s.Stats.CacheHits) / float64(s.Stats.Reads)
		fmt.Fprintf(&b, "%-20s %12d %12s %12s %12s %9.1f%%\n",
			s.System, s.CacheBytes>>20,
			microseconds(s.Result.Latencies.Mean()),
			microseconds(s.Result.Latencies.Percentile(95)),
			microseconds(s.Result.Latencies.Stdev()),
			100*hitRate)
	}
	b.WriteString("\nTime course (bucketed mean latency, µs):\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-20s cache %2d MB:", s.System, s.CacheBytes>>20)
		for _, p := range s.Result.Series.Buckets(10) {
			fmt.Fprintf(&b, " %7.0f", stats.Micros(p.Value))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
