package bench

import (
	"strings"
	"testing"

	"fluidmem/internal/core"
)

func quickOpts() Options { return Options{Quick: true, Seed: 1} }

func TestFig3ShapeMatchesPaper(t *testing.T) {
	res, err := RunFig3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lines) != 6 {
		t.Fatalf("lines = %d", len(res.Lines))
	}
	get := func(name string) float64 {
		d, ok := res.Average(name)
		if !ok {
			t.Fatalf("missing system %q", name)
		}
		return float64(d)
	}
	fmRC := get("FluidMem RAMCloud")
	fmMC := get("FluidMem Memcached")
	swapDRAM := get("Swap DRAM")
	swapNVMe := get("Swap NVMeoF")
	swapSSD := get("Swap SSD")
	fmDRAM := get("FluidMem DRAM")

	// The paper's headline orderings (§VI-B).
	if !(fmRC < swapNVMe) {
		t.Errorf("FluidMem RAMCloud (%v) not faster than swap NVMeoF (%v)", fmRC, swapNVMe)
	}
	if !(fmRC < swapSSD) {
		t.Errorf("FluidMem RAMCloud (%v) not faster than swap SSD (%v)", fmRC, swapSSD)
	}
	if !(fmDRAM < swapDRAM) {
		t.Errorf("FluidMem DRAM (%v) not faster than swap DRAM (%v)", fmDRAM, swapDRAM)
	}
	if !(swapDRAM < swapNVMe && swapNVMe < swapSSD) {
		t.Errorf("swap device ordering broken: %v %v %v", swapDRAM, swapNVMe, swapSSD)
	}
	if !(fmMC > swapNVMe && fmMC < swapSSD) {
		t.Errorf("Memcached (%v) should sit between NVMeoF (%v) and SSD (%v)", fmMC, swapNVMe, swapSSD)
	}
	// Paper: 40% reduction FluidMem-RAMCloud vs swap-NVMeoF; allow a band.
	if saving := 1 - fmRC/swapNVMe; saving < 0.15 || saving > 0.60 {
		t.Errorf("RAMCloud saving vs NVMeoF = %.0f%%, want ≈40%%", saving*100)
	}
	if !strings.Contains(res.Render(), "Figure 3") {
		t.Error("render missing title")
	}
}

func TestTable1MatchesPaperCalibration(t *testing.T) {
	res, err := RunTable1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Paper's Table I averages in µs, with a ±25% acceptance band.
	want := map[string]float64{
		core.OpUpdatePageCache: 2.56,
		core.OpInsertPageHash:  2.58,
		core.OpInsertLRUCache:  2.87,
		core.OpUffdZeroPage:    2.61,
		core.OpUffdRemap:       1.65,
		core.OpUffdCopy:        3.89,
		core.OpReadPage:        15.62,
		core.OpWritePage:       14.70,
	}
	for op, target := range want {
		row, ok := res.Row(op)
		if !ok {
			t.Fatalf("missing row %s", op)
		}
		got := float64(row.Avg) / 1000 // ns → µs
		if got < target*0.75 || got > target*1.25 {
			t.Errorf("%s avg = %.2fµs, want ≈%.2fµs", op, got, target)
		}
	}
	// UFFD_REMAP's defining feature: a TLB-shootdown p99 tail far above avg.
	remap, _ := res.Row(core.OpUffdRemap)
	if remap.P99 < 4*remap.Avg {
		t.Errorf("REMAP p99 (%v) lacks the shootdown tail (avg %v)", remap.P99, remap.Avg)
	}
}

func TestTable2OptimisationsMonotone(t *testing.T) {
	res, err := RunTable2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	cell := func(opt, backend string) float64 {
		c, ok := res.Cell(opt, backend)
		if !ok {
			t.Fatalf("missing cell %s/%s", opt, backend)
		}
		return float64(c.Random)
	}
	def := cell("Default", "ramcloud")
	ar := cell("Async Read", "ramcloud")
	aw := cell("Async Write", "ramcloud")
	both := cell("Async Read/Write", "ramcloud")
	if !(ar < def) {
		t.Errorf("async read (%v) did not beat default (%v)", ar, def)
	}
	if !(aw < def) {
		t.Errorf("async write (%v) did not beat default (%v)", aw, def)
	}
	if !(both < ar && both < aw) {
		t.Errorf("combined (%v) did not beat singles (%v, %v)", both, ar, aw)
	}
	// Paper: combined optimisations cut RAMCloud latency roughly in half.
	if ratio := both / def; ratio > 0.75 {
		t.Errorf("combined/default = %.2f, want large improvement", ratio)
	}
	// DRAM shows much smaller absolute gains than RAMCloud.
	dramGain := cell("Default", "dram") - cell("Async Read/Write", "dram")
	rcGain := def - both
	if dramGain > rcGain {
		t.Errorf("DRAM gained more (%v) than RAMCloud (%v)", dramGain, rcGain)
	}
}

func TestFig4ShapeMatchesPaper(t *testing.T) {
	res, err := RunFig4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	scales := res.Config.Scales
	low, high := scales[0], scales[len(scales)-1]
	teps := func(sys string, scale int) float64 {
		v, ok := res.TEPS(sys, scale)
		if !ok {
			t.Fatalf("missing %s scale %d", sys, scale)
		}
		return v
	}
	// In-DRAM scale: FluidMem overhead vs swap is small (paper: 2.6%).
	fm, sw := teps("FluidMem RAMCloud", low), teps("Swap NVMeoF", low)
	if overhead := 1 - fm/sw; overhead > 0.15 {
		t.Errorf("FluidMem overhead at in-DRAM scale = %.1f%%, want small", overhead*100)
	}
	// Beyond DRAM: FluidMem RAMCloud must beat swap NVMeoF (Figure 4b-d).
	if fm, sw := teps("FluidMem RAMCloud", high), teps("Swap NVMeoF", high); fm <= sw {
		t.Errorf("FluidMem RAMCloud (%v) not above swap NVMeoF (%v) under pressure", fm, sw)
	}
	// Memcached-backed FluidMem beats swap on SSD (the Ethernet-datacenter
	// argument of §VI-D1).
	if mc, ssd := teps("FluidMem Memcached", high), teps("Swap SSD", high); mc <= ssd {
		t.Errorf("FluidMem Memcached (%v) not above swap SSD (%v)", mc, ssd)
	}
	// TEPS decreases as WSS grows for every system.
	for _, sys := range Systems() {
		if a, b := teps(sys.Label, low), teps(sys.Label, high); b >= a {
			t.Errorf("%s TEPS did not degrade with scale (%v → %v)", sys.Label, a, b)
		}
	}
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	res, err := RunFig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	sizes := res.Config.CacheSizes
	small, large := sizes[0], sizes[len(sizes)-1]
	fmSmall, ok := res.Mean("FluidMem RAMCloud", small)
	if !ok {
		t.Fatal("missing series")
	}
	fmLarge, _ := res.Mean("FluidMem RAMCloud", large)
	swSmall, _ := res.Mean("Swap NVMeoF", small)
	swLarge, _ := res.Mean("Swap NVMeoF", large)
	// Latency decreases with cache size for both systems.
	if fmLarge >= fmSmall {
		t.Errorf("FluidMem did not improve with cache: %v → %v", fmSmall, fmLarge)
	}
	if swLarge >= swSmall {
		t.Errorf("swap did not improve with cache: %v → %v", swSmall, swLarge)
	}
	// At the smallest cache, swap is markedly worse (paper: up to 95%).
	if swSmall <= fmSmall {
		t.Errorf("swap (%v) not slower than FluidMem (%v) at small cache", swSmall, fmSmall)
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	res, err := RunTable3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	boot, _ := res.Row("After startup")
	if !boot.SSH || !boot.ICMP {
		t.Error("fresh VM should answer both services")
	}
	balloon, _ := res.Row("Max VM balloon size")
	if balloon.FootprintPages <= 180 {
		t.Error("balloon reached a FluidMem-scale footprint; its floor should stop it")
	}
	fm180, _ := res.Row("FluidMem (KVM) 180")
	if !fm180.SSH || !fm180.ICMP || !fm180.Revived {
		t.Errorf("180 pages: %+v", fm180)
	}
	fm80, _ := res.Row("FluidMem (KVM) 80")
	if fm80.SSH || !fm80.ICMP || !fm80.Revived {
		t.Errorf("80 pages: %+v", fm80)
	}
	fv1, _ := res.Row("FluidMem (full virtualization)")
	if fv1.SSH || fv1.ICMP || fv1.Deadlocked || !fv1.Revived {
		t.Errorf("1 page full virt: %+v", fv1)
	}
}

func TestAblationsRun(t *testing.T) {
	steal, err := RunAblationSteal(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var on, off AblationPoint
	for _, p := range steal.Points {
		if p.Label == "steal=on" {
			on = p
		} else {
			off = p
		}
	}
	if on.Steals == 0 || off.Steals != 0 {
		t.Errorf("steal counters wrong: on=%d off=%d", on.Steals, off.Steals)
	}
	// Stealing removes the forced-flush wait: the tail must be smaller.
	if on.P99Latency >= off.P99Latency {
		t.Errorf("steal=on p99 (%v) not below steal=off (%v)", on.P99Latency, off.P99Latency)
	}

	remap, err := RunAblationRemap(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(remap.Points) != 2 {
		t.Fatal("remap ablation incomplete")
	}

	lru, err := RunAblationLRU(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// More local memory, fewer remote reads.
	for i := 1; i < len(lru.Points); i++ {
		if lru.Points[i].StoreGets > lru.Points[i-1].StoreGets {
			t.Errorf("gets rose with more local memory: %+v", lru.Points)
		}
	}

	batch, err := RunAblationBatch(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Points) != 5 {
		t.Fatal("batch sweep incomplete")
	}

	compress, err := RunAblationCompress(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// A big-enough pool must remove remote read traffic entirely.
	first, last := compress.Points[0], compress.Points[len(compress.Points)-1]
	if first.Label != "pool=off" || first.StoreGets == 0 {
		t.Errorf("baseline point wrong: %+v", first)
	}
	if last.StoreGets >= first.StoreGets {
		t.Errorf("largest pool removed no remote reads: %d vs %d", last.StoreGets, first.StoreGets)
	}

	prefetch, err := RunAblationPrefetch(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var seqOff, seqOn, randOff, randOn AblationPoint
	for _, p := range prefetch.Points {
		switch p.Label {
		case "seq, prefetch=0":
			seqOff = p
		case "seq, prefetch=8":
			seqOn = p
		case "rand, prefetch=0":
			randOff = p
		case "rand, prefetch=8":
			randOn = p
		}
	}
	if seqOn.MeanLatency >= seqOff.MeanLatency {
		t.Errorf("prefetch did not help sequential scans: %v vs %v", seqOn.MeanLatency, seqOff.MeanLatency)
	}
	if randOn.StoreGets <= randOff.StoreGets {
		t.Errorf("random prefetch shows no wasted reads: %d vs %d", randOn.StoreGets, randOff.StoreGets)
	}

	for _, r := range []*AblationResult{steal, remap, lru, batch, compress, prefetch} {
		if !strings.Contains(r.Render(), "Ablation") {
			t.Error("render missing header")
		}
	}
}

func TestDensityFluidMemWins(t *testing.T) {
	res, err := RunDensity(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The shared LRU must hand the idle guests' DRAM to the active one.
	if res.FluidMemMean >= res.SwapMean {
		t.Errorf("FluidMem active guest (%v) not faster than statically partitioned swap (%v)",
			res.FluidMemMean, res.SwapMean)
	}
	if res.FluidMemActiveRes <= res.SwapFramesPerVM {
		t.Errorf("active guest only holds %d pages; static split gives %d",
			res.FluidMemActiveRes, res.SwapFramesPerVM)
	}
	// Density must not kill the idle guests.
	if !res.IdleStillRespond {
		t.Error("idle guests stopped answering ICMP")
	}
	if !strings.Contains(res.Render(), "Density") {
		t.Error("render missing header")
	}
}

func TestWorkersThroughputMonotone(t *testing.T) {
	res, err := RunWorkers(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(WorkerCounts()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The headline claim: fault throughput rises monotonically from 1 to 4
	// workers. Beyond that the shared store read channel is the floor, so 8
	// workers only needs to hold the level (small tolerance for jitter).
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		if cur.Workers <= 4 && cur.Throughput <= prev.Throughput {
			t.Errorf("throughput not increasing %d→%d workers: %.0f vs %.0f",
				prev.Workers, cur.Workers, prev.Throughput, cur.Throughput)
		}
		if cur.Workers > 4 && cur.Throughput < prev.Throughput*0.95 {
			t.Errorf("throughput regressed %d→%d workers: %.0f vs %.0f",
				prev.Workers, cur.Workers, prev.Throughput, cur.Throughput)
		}
	}
	// Going 1→2 workers must be a big step, not noise: the serial monitor
	// is the bottleneck at width 1.
	if res.Rows[1].Throughput < res.Rows[0].Throughput*1.5 {
		t.Errorf("2 workers only %.0f vs %.0f at 1: pipeline not the bottleneck",
			res.Rows[1].Throughput, res.Rows[0].Throughput)
	}
	// Batching must actually batch: every demand fault is one MultiGet
	// carrying itself plus its readahead window.
	last := res.Rows[len(res.Rows)-1]
	if last.MultiGets == 0 || last.BatchedGets < last.MultiGets*4 {
		t.Errorf("MultiGet batching missing: %d batches, %d keys", last.MultiGets, last.BatchedGets)
	}
	if !strings.Contains(res.Render(), "Worker scaling") {
		t.Error("render missing header")
	}
}
