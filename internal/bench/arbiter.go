package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"fluidmem"
)

// This experiment evaluates the multi-tenant host arbiter (DESIGN.md §12):
// two VMs share one DRAM page budget and one RAMCloud-class store, one VM
// cycling a working set larger than its equal split (every access re-faults
// and re-references at a fixed ghost depth — a steep miss-ratio curve), the
// other fitting comfortably (flat curve). The static equal split pays the
// hot VM's full thrash forever; the arbiter reads the ghost-LRU curves each
// epoch and moves slabs from the flat donor to the steep taker until the hot
// working set fits. The headline metric is aggregate fault cost — the sum of
// end-to-end fault latencies across both tenants in virtual time — which the
// arbiter must strictly beat.

// ArbiterBenchConfig scales the experiment.
type ArbiterBenchConfig struct {
	// TotalLocalPages is the shared host budget; the equal split gives each
	// VM half.
	TotalLocalPages int `json:"total_local_pages"`
	// HotSpan / ColdSpan are the two tenants' cyclic working-set sizes in
	// pages. HotSpan exceeds the equal split; ColdSpan fits.
	HotSpan  int `json:"hot_span_pages"`
	ColdSpan int `json:"cold_span_pages"`
	// EpochOps is the per-VM operation count per arbiter epoch; Rounds is
	// how many epochs the run drives.
	EpochOps int    `json:"epoch_ops"`
	Rounds   int    `json:"rounds"`
	Seed     uint64 `json:"seed"`
}

// DefaultArbiterBenchConfig sizes the skewed two-tenant host.
func DefaultArbiterBenchConfig(opts Options) ArbiterBenchConfig {
	cfg := ArbiterBenchConfig{
		TotalLocalPages: 256,
		HotSpan:         160,
		ColdSpan:        32,
		EpochOps:        512,
		Rounds:          10,
		Seed:            opts.Seed,
	}
	if opts.Quick {
		cfg.TotalLocalPages, cfg.HotSpan, cfg.ColdSpan = 64, 40, 8
		cfg.EpochOps, cfg.Rounds = 200, 6
	}
	return cfg
}

// ArbiterVMRow is one tenant's outcome under one variant.
type ArbiterVMRow struct {
	VM        string `json:"vm"`
	SpanPages int    `json:"span_pages"`
	// SharePages is the tenant's final local-buffer capacity; WSSPages the
	// ghost-LRU estimator's working-set estimate at run end.
	SharePages int `json:"share_pages"`
	WSSPages   int `json:"wss_pages"`
	// Faults and GhostHits are cumulative monitor / estimator counters;
	// FaultCost sums the tenant's end-to-end fault latencies.
	Faults    uint64        `json:"faults"`
	GhostHits uint64        `json:"ghost_hits"`
	FaultCost time.Duration `json:"fault_cost_ns"`
}

// ArbiterVariantRow is one budget policy's outcome.
type ArbiterVariantRow struct {
	// Variant is "static-equal-split" or "arbiter".
	Variant string         `json:"variant"`
	VMs     []ArbiterVMRow `json:"vms"`
	// TotalFaultCost aggregates fault cost across tenants — the headline
	// the arbiter must beat; TotalFaults aggregates the fault counts.
	TotalFaultCost time.Duration `json:"total_fault_cost_ns"`
	TotalFaults    uint64        `json:"total_faults"`
	// HostNow is the host virtual clock at run end.
	HostNow time.Duration `json:"host_now_ns"`
	// Arbiter activity (all zero for the static split).
	Epochs           uint64 `json:"arbiter_epochs"`
	Moves            uint64 `json:"arbiter_moves"`
	GrantedPages     uint64 `json:"arbiter_granted_pages"`
	PredictedSavings uint64 `json:"arbiter_predicted_savings"`
	RealizedSavings  uint64 `json:"arbiter_realized_savings"`
}

// ArbiterResult compares the static equal split against the arbiter on the
// same skewed workload.
type ArbiterResult struct {
	Config ArbiterBenchConfig  `json:"config"`
	Rows   []ArbiterVariantRow `json:"rows"`
	// ArbiterWins reports whether the arbiter's aggregate fault cost came
	// in under the static split's; SavingsPct is the relative reduction.
	ArbiterWins bool    `json:"arbiter_wins"`
	SavingsPct  float64 `json:"savings_pct"`
}

// runArbiterVariant builds the two-tenant host and drives the skewed cyclic
// workload round-robin for Rounds epochs. Both variants replay the identical
// logical operation sequence; only the budget policy differs.
func runArbiterVariant(cfg ArbiterBenchConfig, withArbiter bool) (ArbiterVariantRow, error) {
	row := ArbiterVariantRow{Variant: "static-equal-split"}
	if withArbiter {
		row.Variant = "arbiter"
	}
	vms := []fluidmem.MachineConfig{
		{Backend: fluidmem.BackendRAMCloud, GuestMemory: 16 << 20},
		{Backend: fluidmem.BackendRAMCloud, GuestMemory: 16 << 20},
	}
	hc := fluidmem.HostConfig{VMs: vms, TotalLocalPages: cfg.TotalLocalPages, Seed: cfg.Seed}
	if withArbiter {
		hc.Arbiter = &fluidmem.ArbiterConfig{EpochOps: cfg.EpochOps}
	}
	h, err := fluidmem.NewHost(hc)
	if err != nil {
		return row, err
	}

	spans := []int{cfg.HotSpan, cfg.ColdSpan}
	segs := make([]uint64, h.VMs())
	costs := make([]time.Duration, h.VMs())
	for i := 0; i < h.VMs(); i++ {
		seg, err := h.Machine(i).Alloc("ws", uint64(spans[i])*fluidmem.PageSize)
		if err != nil {
			return row, err
		}
		segs[i] = seg.Addr(0)
		i := i
		h.Machine(i).Monitor().SetFaultLatencySink(func(d time.Duration) { costs[i] += d })
	}

	for op := 0; op < cfg.Rounds*cfg.EpochOps; op++ {
		for i := 0; i < h.VMs(); i++ {
			addr := segs[i] + uint64(op%spans[i])*fluidmem.PageSize
			if _, err := h.Touch(i, addr, op%3 == 0); err != nil {
				return row, fmt.Errorf("%s: vm%d op %d: %w", row.Variant, i, op, err)
			}
		}
	}
	if err := h.Drain(); err != nil {
		return row, err
	}

	st := h.Stats()
	row.HostNow = st.Now
	row.Epochs = st.Arbiter.Epochs
	row.Moves = st.Arbiter.Moves
	row.GrantedPages = st.Arbiter.GrantedPages
	row.PredictedSavings = st.Arbiter.PredictedSavings
	row.RealizedSavings = st.Arbiter.RealizedSavings
	for i, ms := range st.VMs {
		vr := ArbiterVMRow{
			VM:         fmt.Sprintf("vm%d", i),
			SpanPages:  spans[i],
			SharePages: st.Shares[i],
			WSSPages:   st.WSSPages[i],
			FaultCost:  costs[i],
		}
		if ms.Monitor != nil {
			vr.Faults = ms.Monitor.Faults
		}
		if ms.Hotset != nil {
			vr.GhostHits = ms.Hotset.GhostHits
		}
		row.VMs = append(row.VMs, vr)
		row.TotalFaultCost += vr.FaultCost
		row.TotalFaults += vr.Faults
	}
	return row, nil
}

// RunArbiter runs the static-split-vs-arbiter comparison.
func RunArbiter(opts Options) (*ArbiterResult, error) {
	cfg := DefaultArbiterBenchConfig(opts)
	res := &ArbiterResult{Config: cfg}
	for _, withArbiter := range []bool{false, true} {
		row, err := runArbiterVariant(cfg, withArbiter)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	static, arb := res.Rows[0], res.Rows[1]
	res.ArbiterWins = arb.TotalFaultCost < static.TotalFaultCost
	if static.TotalFaultCost > 0 {
		saved := float64(static.TotalFaultCost - arb.TotalFaultCost)
		res.SavingsPct = 100 * saved / float64(static.TotalFaultCost)
	}
	return res, nil
}

// JSON emits the machine-readable artifact (BENCH_arbiter.json).
func (r *ArbiterResult) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Render prints the comparison as a paper-style table.
func (r *ArbiterResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Host arbiter vs static equal split — budget %d pages, spans %d/%d, %d epochs × %d ops (seed %d)\n",
		r.Config.TotalLocalPages, r.Config.HotSpan, r.Config.ColdSpan, r.Config.Rounds, r.Config.EpochOps, r.Config.Seed)
	fmt.Fprintf(&b, "%-20s %-6s %6s %7s %5s %10s %11s %14s\n",
		"variant", "vm", "span", "share", "wss", "faults", "ghost-hits", "fault-cost")
	for _, row := range r.Rows {
		for _, vr := range row.VMs {
			fmt.Fprintf(&b, "%-20s %-6s %6d %7d %5d %10d %11d %14s\n",
				row.Variant, vr.VM, vr.SpanPages, vr.SharePages, vr.WSSPages,
				vr.Faults, vr.GhostHits, vr.FaultCost.Round(time.Microsecond))
		}
		fmt.Fprintf(&b, "%-20s %-6s %6s %7s %5s %10d %11s %14s\n",
			row.Variant, "total", "", "", "", row.TotalFaults, "", row.TotalFaultCost.Round(time.Microsecond))
		if row.Variant == "arbiter" {
			fmt.Fprintf(&b, "  arbiter: %d epochs, %d moves, %d pages granted, predicted savings %d hits, realized %d\n",
				row.Epochs, row.Moves, row.GrantedPages, row.PredictedSavings, row.RealizedSavings)
		}
	}
	if r.ArbiterWins {
		fmt.Fprintf(&b, "arbiter cuts aggregate fault cost by %.1f%%\n", r.SavingsPct)
	} else {
		fmt.Fprintf(&b, "arbiter did NOT beat the static split (%.1f%%)\n", r.SavingsPct)
	}
	return b.String()
}
