package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"fluidmem"
)

// This experiment evaluates the Memtrade-style memory marketplace
// (DESIGN.md §16) against the PR-5 greedy arbiter and the static equal
// split on three two-tenant mixes:
//
//   - skewed: one steep cyclic working set that outgrows its split, one
//     flat one that fits — the arbiter's home turf. The market must match
//     its aggregate fault cost here (within 5%): SLO enforcement may not
//     tax the common case.
//   - shifting: the hot working set migrates between the tenants mid-run;
//     both carry tight p99 SLOs. Measures how each policy re-converges.
//   - adversarial: an SLO-less adversary cycling a working set larger
//     than the WHOLE host budget (its curve never flattens, so it bids
//     forever) against a small victim with a tight p99 SLO. The greedy
//     arbiter is SLO-blind and lets the adversary drain the victim; the
//     market claws leases back the moment the victim's window p99 blows
//     its target. The headline is the SLO-miss rate — violated windows
//     over evaluated windows — which the market must cut.
//
// All three variants replay the identical logical operation sequence per
// mix; only the budget policy differs. Fault cost is the sum of
// end-to-end fault latencies in virtual time, so every number here is
// bit-deterministic per seed.

// MarketBenchConfig scales the experiment; per-mix working-set spans are
// derived from the budget (hot 5/8, cold 1/8, adversary 5/4 — the
// adversary deliberately exceeds the whole budget).
type MarketBenchConfig struct {
	// TotalLocalPages is the shared host budget; the equal split gives
	// each tenant half.
	TotalLocalPages int `json:"total_local_pages"`
	// EpochOps is the per-tenant operation count per planner epoch;
	// Rounds is how many epochs the run drives.
	EpochOps int    `json:"epoch_ops"`
	Rounds   int    `json:"rounds"`
	Seed     uint64 `json:"seed"`
	// TightSLO is the victim-class p99 target. It sits below the DRAM
	// store's fault latency, so a tenant pushed into faulting violates it
	// while a resident one meets it vacuously. LooseSLO is a target no
	// DRAM-backed tenant ever misses; it keeps SLO enforcement live on
	// mixes with no intended victim.
	TightSLO time.Duration `json:"tight_slo_ns"`
	LooseSLO time.Duration `json:"loose_slo_ns"`
}

// DefaultMarketBenchConfig sizes the three mixes.
func DefaultMarketBenchConfig(opts Options) MarketBenchConfig {
	cfg := MarketBenchConfig{
		TotalLocalPages: 128,
		EpochOps:        400,
		Rounds:          12,
		Seed:            opts.Seed,
		TightSLO:        time.Microsecond,
		LooseSLO:        time.Millisecond,
	}
	if opts.Quick {
		cfg.TotalLocalPages, cfg.EpochOps, cfg.Rounds = 64, 200, 6
	}
	return cfg
}

// marketTenantDef declares one tenant of a mix: its SLO target and its
// cyclic working-set span in each half of the run (equal spans = no shift).
type marketTenantDef struct {
	id    string
	slo   time.Duration
	spans [2]int
}

// marketMix is one tenant population.
type marketMix struct {
	name    string
	tenants []marketTenantDef
}

// marketMixes derives the three populations from the budget.
func marketMixes(cfg MarketBenchConfig) []marketMix {
	hot := cfg.TotalLocalPages * 5 / 8
	cold := cfg.TotalLocalPages / 8
	adv := cfg.TotalLocalPages * 5 / 4
	return []marketMix{
		{name: "skewed", tenants: []marketTenantDef{
			{id: "hot", spans: [2]int{hot, hot}},
			{id: "cold", slo: cfg.LooseSLO, spans: [2]int{cold, cold}},
		}},
		{name: "shifting", tenants: []marketTenantDef{
			{id: "early", slo: cfg.TightSLO, spans: [2]int{hot, cold}},
			{id: "late", slo: cfg.TightSLO, spans: [2]int{cold, hot}},
		}},
		{name: "adversarial", tenants: []marketTenantDef{
			{id: "adv", spans: [2]int{adv, adv}},
			{id: "victim", slo: cfg.TightSLO, spans: [2]int{cold, cold}},
		}},
	}
}

// MarketTenantRow is one tenant's outcome under one (mix, variant) cell.
type MarketTenantRow struct {
	Tenant string `json:"tenant"`
	// SpanPages holds the tenant's working-set span in each half of the
	// run; SLOTarget its p99 contract (0 = none).
	SpanPages [2]int        `json:"span_pages"`
	SLOTarget time.Duration `json:"slo_target_ns"`
	// SharePages is the tenant's final local-buffer capacity; WSSPages
	// the ghost-LRU working-set estimate at run end.
	SharePages int `json:"share_pages"`
	WSSPages   int `json:"wss_pages"`
	// Faults / FaultCost are the tenant's cumulative fault count and
	// summed end-to-end fault latencies.
	Faults    uint64        `json:"faults"`
	FaultCost time.Duration `json:"fault_cost_ns"`
	// SLOWindows / SLOViolations count evaluated and violated epoch
	// windows; LastP99 is the final window's p99.
	SLOWindows    uint64        `json:"slo_windows"`
	SLOViolations uint64        `json:"slo_violations"`
	LastP99       time.Duration `json:"last_window_p99_ns"`
}

// MarketActivity mirrors the marketplace counters into the artifact.
type MarketActivity struct {
	Epochs            uint64 `json:"epochs"`
	SLOEnforcedEpochs uint64 `json:"slo_enforced_epochs"`
	SLOViolations     uint64 `json:"slo_violations"`
	Leases            uint64 `json:"leases"`
	LeasedPages       uint64 `json:"leased_pages"`
	Clawbacks         uint64 `json:"clawbacks"`
	ClawedPages       uint64 `json:"clawed_pages"`
}

// MarketVariantRow is one budget policy's outcome on one mix.
type MarketVariantRow struct {
	Mix string `json:"mix"`
	// Variant is "static-equal-split", "arbiter", or "market".
	Variant string            `json:"variant"`
	Tenants []MarketTenantRow `json:"tenants"`
	// TotalFaultCost / TotalFaults aggregate across tenants; FaultsPerSec
	// is the virtual-time fault throughput (ratchet row).
	TotalFaultCost time.Duration `json:"total_fault_cost_ns"`
	TotalFaults    uint64        `json:"total_faults"`
	FaultsPerSec   float64       `json:"faults_per_sec"`
	HostNow        time.Duration `json:"host_now_ns"`
	// SLOWindows / SLOViolations aggregate the per-tenant SLO accounting;
	// SLOMissPct is violations over windows.
	SLOWindows    uint64  `json:"slo_windows"`
	SLOViolations uint64  `json:"slo_violations"`
	SLOMissPct    float64 `json:"slo_miss_pct"`
	// Market carries the lease-book counters (market variant only).
	Market *MarketActivity `json:"market,omitempty"`
}

// MarketResult compares the three budget policies across the three mixes.
type MarketResult struct {
	Config MarketBenchConfig  `json:"config"`
	Rows   []MarketVariantRow `json:"rows"`
	// The two acceptance headlines. MarketBeatsArbiterSLO: on the
	// adversarial mix the market's SLO-miss rate comes in under the
	// arbiter's. SkewedCostDeltaPct: the market's aggregate fault cost on
	// the skewed mix relative to the arbiter's (positive = market more
	// expensive); WithinSkewedCostBound caps it at +5%.
	AdversarialMarketMissPct  float64 `json:"adversarial_market_miss_pct"`
	AdversarialArbiterMissPct float64 `json:"adversarial_arbiter_miss_pct"`
	MarketBeatsArbiterSLO     bool    `json:"market_beats_arbiter_slo"`
	SkewedCostDeltaPct        float64 `json:"skewed_cost_delta_pct"`
	WithinSkewedCostBound     bool    `json:"within_skewed_cost_bound"`
}

var marketVariants = []string{"static-equal-split", "arbiter", "market"}

// runMarketVariant builds the mix's tenant population under one budget
// policy and drives the cyclic (possibly shifting) workload round-robin.
func runMarketVariant(cfg MarketBenchConfig, mix marketMix, variant string) (MarketVariantRow, error) {
	row := MarketVariantRow{Mix: mix.name, Variant: variant}
	specs := make([]fluidmem.TenantSpec, len(mix.tenants))
	for i, def := range mix.tenants {
		specs[i] = fluidmem.TenantSpec{
			ID:     def.id,
			VM:     fluidmem.MachineConfig{Backend: fluidmem.BackendDRAM, GuestMemory: 16 << 20},
			Policy: fluidmem.TenantPolicy{SLO: def.slo},
		}
	}
	hc := fluidmem.HostConfig{Tenants: specs, TotalLocalPages: cfg.TotalLocalPages, Seed: cfg.Seed}
	switch variant {
	case "arbiter":
		hc.Arbiter = &fluidmem.ArbiterConfig{EpochOps: cfg.EpochOps}
	case "market":
		hc.Market = &fluidmem.MarketConfig{EpochOps: cfg.EpochOps}
	default:
		// The static split still runs epoch windows so SLO-miss rates are
		// comparable across variants.
		hc.EpochOps = cfg.EpochOps
	}
	h, err := fluidmem.NewHost(hc)
	if err != nil {
		return row, err
	}

	segs := make([]uint64, len(mix.tenants))
	costs := make([]time.Duration, len(mix.tenants))
	for i, def := range mix.tenants {
		span := def.spans[0]
		if def.spans[1] > span {
			span = def.spans[1]
		}
		seg, err := h.Machine(i).Alloc("ws", uint64(span)*fluidmem.PageSize)
		if err != nil {
			return row, err
		}
		segs[i] = seg.Addr(0)
		i := i
		h.Machine(i).Monitor().SetFaultLatencySink(func(d time.Duration) { costs[i] += d })
	}

	total := cfg.Rounds * cfg.EpochOps
	for op := 0; op < total; op++ {
		phase := 0
		if op >= total/2 {
			phase = 1
		}
		for i, def := range mix.tenants {
			addr := segs[i] + uint64(op%def.spans[phase])*fluidmem.PageSize
			if _, err := h.Touch(i, addr, op%3 == 0); err != nil {
				return row, fmt.Errorf("%s/%s: tenant %s op %d: %w", mix.name, variant, def.id, op, err)
			}
		}
	}
	if err := h.Drain(); err != nil {
		return row, err
	}

	st := h.Stats()
	row.HostNow = st.Now
	for i, ts := range st.Tenants {
		tr := MarketTenantRow{
			Tenant:        ts.ID,
			SpanPages:     mix.tenants[i].spans,
			SLOTarget:     ts.Policy.SLO,
			SharePages:    ts.SharePages,
			WSSPages:      ts.WSSPages,
			FaultCost:     costs[i],
			SLOWindows:    ts.SLO.Windows,
			SLOViolations: ts.SLO.Violations,
			LastP99:       ts.SLO.LastP99,
		}
		if st.VMs[i].Monitor != nil {
			tr.Faults = st.VMs[i].Monitor.Faults
		}
		row.Tenants = append(row.Tenants, tr)
		row.TotalFaultCost += tr.FaultCost
		row.TotalFaults += tr.Faults
		row.SLOWindows += tr.SLOWindows
		row.SLOViolations += tr.SLOViolations
	}
	if row.SLOWindows > 0 {
		row.SLOMissPct = 100 * float64(row.SLOViolations) / float64(row.SLOWindows)
	}
	if secs := row.HostNow.Seconds(); secs > 0 {
		row.FaultsPerSec = float64(row.TotalFaults) / secs
	}
	if st.Market != nil {
		row.Market = &MarketActivity{
			Epochs:            st.Market.Epochs,
			SLOEnforcedEpochs: st.Market.SLOEnforcedEpochs,
			SLOViolations:     st.Market.SLOViolations,
			Leases:            st.Market.Leases,
			LeasedPages:       st.Market.LeasedPages,
			Clawbacks:         st.Market.Clawbacks,
			ClawedPages:       st.Market.ClawedPages,
		}
	}
	return row, nil
}

// RunMarket runs the 3-mix × 3-variant comparison.
func RunMarket(opts Options) (*MarketResult, error) {
	cfg := DefaultMarketBenchConfig(opts)
	res := &MarketResult{Config: cfg}
	rows := map[string]MarketVariantRow{}
	for _, mix := range marketMixes(cfg) {
		for _, variant := range marketVariants {
			row, err := runMarketVariant(cfg, mix, variant)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
			rows[mix.name+"/"+variant] = row
		}
	}
	advM, advA := rows["adversarial/market"], rows["adversarial/arbiter"]
	res.AdversarialMarketMissPct = advM.SLOMissPct
	res.AdversarialArbiterMissPct = advA.SLOMissPct
	res.MarketBeatsArbiterSLO = advM.SLOWindows > 0 && advA.SLOWindows > 0 &&
		advM.SLOMissPct < advA.SLOMissPct
	skM, skA := rows["skewed/market"], rows["skewed/arbiter"]
	if skA.TotalFaultCost > 0 {
		res.SkewedCostDeltaPct = 100 * (float64(skM.TotalFaultCost) - float64(skA.TotalFaultCost)) /
			float64(skA.TotalFaultCost)
	}
	res.WithinSkewedCostBound = res.SkewedCostDeltaPct <= 5
	return res, nil
}

// Validate guards the artifact against vacuous SLO enforcement: a market
// row whose marketplace never ran an SLO-enforced epoch (no tenant carried
// a target, or windows never closed) measures nothing this experiment is
// about, so bench-json must fail loudly rather than commit it.
func (r *MarketResult) Validate() error {
	marketRows := 0
	for _, row := range r.Rows {
		if row.Variant != "market" {
			continue
		}
		marketRows++
		if row.Market == nil {
			return fmt.Errorf("bench: market row %q has no marketplace counters", row.Mix)
		}
		if row.Market.Epochs == 0 {
			return fmt.Errorf("bench: market row %q ran zero epochs (EpochOps too large for the drive?)", row.Mix)
		}
		if row.Market.SLOEnforcedEpochs == 0 {
			return fmt.Errorf("bench: market row %q ran %d epochs with zero SLO-enforcement epochs — no tenant carried an SLO target",
				row.Mix, row.Market.Epochs)
		}
		if row.SLOWindows == 0 {
			return fmt.Errorf("bench: market row %q evaluated zero SLO windows", row.Mix)
		}
	}
	if marketRows == 0 {
		return fmt.Errorf("bench: market result has no market variant rows")
	}
	return nil
}

// JSON emits the machine-readable artifact (BENCH_market.json), refusing
// to serialise a result that fails Validate.
func (r *MarketResult) JSON() ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(r, "", "  ")
}

// Render prints the comparison as a paper-style table.
func (r *MarketResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Memory marketplace vs arbiter vs static split — budget %d pages, %d epochs × %d ops, tight SLO %s (seed %d)\n",
		r.Config.TotalLocalPages, r.Config.Rounds, r.Config.EpochOps, r.Config.TightSLO, r.Config.Seed)
	fmt.Fprintf(&b, "%-12s %-20s %-8s %9s %7s %5s %10s %14s %8s %9s\n",
		"mix", "variant", "tenant", "span", "share", "wss", "faults", "fault-cost", "slo-win", "slo-miss")
	for _, row := range r.Rows {
		for _, tr := range row.Tenants {
			span := fmt.Sprintf("%d", tr.SpanPages[0])
			if tr.SpanPages[1] != tr.SpanPages[0] {
				span = fmt.Sprintf("%d>%d", tr.SpanPages[0], tr.SpanPages[1])
			}
			fmt.Fprintf(&b, "%-12s %-20s %-8s %9s %7d %5d %10d %14s %8d %9d\n",
				row.Mix, row.Variant, tr.Tenant, span, tr.SharePages, tr.WSSPages,
				tr.Faults, tr.FaultCost.Round(time.Microsecond), tr.SLOWindows, tr.SLOViolations)
		}
		fmt.Fprintf(&b, "%-12s %-20s %-8s %9s %7s %5s %10d %14s %8s %8.1f%%\n",
			row.Mix, row.Variant, "total", "", "", "", row.TotalFaults,
			row.TotalFaultCost.Round(time.Microsecond), "", row.SLOMissPct)
		if row.Market != nil {
			fmt.Fprintf(&b, "  market: %d epochs (%d SLO-enforced), %d leases / %d pages, %d clawbacks / %d pages\n",
				row.Market.Epochs, row.Market.SLOEnforcedEpochs, row.Market.Leases,
				row.Market.LeasedPages, row.Market.Clawbacks, row.Market.ClawedPages)
		}
	}
	if r.MarketBeatsArbiterSLO {
		fmt.Fprintf(&b, "adversarial mix: market SLO-miss %.1f%% beats arbiter %.1f%%\n",
			r.AdversarialMarketMissPct, r.AdversarialArbiterMissPct)
	} else {
		fmt.Fprintf(&b, "adversarial mix: market SLO-miss %.1f%% did NOT beat arbiter %.1f%%\n",
			r.AdversarialMarketMissPct, r.AdversarialArbiterMissPct)
	}
	fmt.Fprintf(&b, "skewed mix: market fault cost %+.1f%% vs arbiter (bound +5%%: %v)\n",
		r.SkewedCostDeltaPct, r.WithinSkewedCostBound)
	return b.String()
}
