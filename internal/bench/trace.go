package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/core"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/ramcloud"
	"fluidmem/internal/trace"
)

// TraceRow is one per-phase fault-latency histogram row in virtual
// nanoseconds, per worker or merged across workers (Worker == -1).
type TraceRow struct {
	Phase  string `json:"phase"`
	Worker int    `json:"worker"`
	Count  uint64 `json:"count"`
	P50ns  int64  `json:"p50_ns"`
	P90ns  int64  `json:"p90_ns"`
	P99ns  int64  `json:"p99_ns"`
	MaxNs  int64  `json:"max_ns"`
}

// TraceResult is the fault-latency breakdown experiment: the full §V-B
// monitor replays a mixed workload with the virtual-time tracer attached,
// then reports per-phase latency percentiles — the decomposition behind a
// Fig.5-style latency figure, with the end-to-end FAULT distribution split
// by resolution path (first_touch / read / batched_read / steal / tier) and
// by pipeline stage (store ops, UFFD ops, eviction, flushes).
type TraceResult struct {
	Pages    int    `json:"pages"`
	Capacity int    `json:"capacity"`
	Ops      int    `json:"ops"`
	Workers  int    `json:"workers"`
	Seed     uint64 `json:"seed"`
	Events   int    `json:"events"`
	// Digest is the logical event-sequence digest: the same seed must
	// reproduce the same value on every run and worker count (the
	// shardtest oracle enforces the latter).
	Digest uint64     `json:"logical_digest"`
	Rows   []TraceRow `json:"rows"`

	tr *trace.Tracer
}

// RunTrace replays the write-back bench's offered-load shape against the
// fully optimised monitor with tracing on and reports the latency breakdown.
func RunTrace(opts Options) (*TraceResult, error) {
	pages, capacity, ops := 1024, 192, 4096
	if opts.Quick {
		pages, capacity, ops = 256, 48, 1024
	}
	const workers = 4
	const interArrival = 2 * time.Microsecond

	tr := trace.New(true)
	store := ramcloud.New(ramcloud.DefaultParams(), opts.Seed+101)
	cfg := core.DefaultConfig(kvstore.Instrumented(store, tr), capacity)
	cfg.Workers = workers
	cfg.Seed = opts.Seed
	cfg.ElideZeroPages = true
	cfg.CleanPageDrop = true
	cfg.PrefetchPages = 4
	cfg.Trace = tr
	m, err := core.NewMonitor(cfg, nil, "bench-trace")
	if err != nil {
		return nil, err
	}
	if _, err := m.RegisterRange(writebackBase, uint64(pages)*core.PageSize, 1); err != nil {
		return nil, err
	}

	// Same op-stream construction as RunWriteback: mixed reads, tag writes,
	// and zeroing writes over a region far larger than local DRAM.
	rng := clock.NewRand(opts.Seed ^ 0xb17e_bac4)
	stream := make([]wbOp, ops)
	for i := range stream {
		op := wbOp{addr: writebackBase + uint64(rng.Intn(pages))*core.PageSize}
		if rng.Float64() < 0.5 {
			op.write = true
			op.tag = byte(i%249) + 1
			if rng.Intn(2) == 0 {
				op.tag = 0
			}
		}
		stream[i] = op
	}

	now := time.Duration(0)
	for p := 0; p < pages; p++ {
		data, done, err := m.Touch(now, writebackBase+uint64(p)*core.PageSize, true)
		if err != nil {
			return nil, fmt.Errorf("trace populate page %d: %w", p, err)
		}
		data[0] = byte(p%249) + 1
		now = done
	}
	if now, err = m.Drain(now); err != nil {
		return nil, err
	}

	sched := clock.NewScheduler()
	var benchErr error
	var finish time.Duration
	arrival := now
	for i, op := range stream {
		op := op
		sched.Schedule(arrival, i, func(at time.Duration) {
			if benchErr != nil {
				return
			}
			data, done, err := m.Touch(at, op.addr, op.write)
			if err != nil {
				benchErr = fmt.Errorf("trace touch %#x: %w", op.addr, err)
				return
			}
			if op.write {
				data[0] = op.tag
			}
			if done > finish {
				finish = done
			}
		})
		arrival += interArrival
	}
	sched.Run()
	if benchErr != nil {
		return nil, benchErr
	}
	if _, err := m.Drain(finish); err != nil {
		return nil, err
	}

	res := &TraceResult{
		Pages: pages, Capacity: capacity, Ops: ops,
		Workers: workers, Seed: opts.Seed,
		Events: len(tr.Events()),
		Digest: tr.LogicalDigest(),
		tr:     tr,
	}
	for _, ph := range tr.Snapshot() {
		res.Rows = append(res.Rows, TraceRow{
			Phase:  ph.Phase,
			Worker: ph.Worker,
			Count:  ph.Count,
			P50ns:  ph.P50.Nanoseconds(),
			P90ns:  ph.P90.Nanoseconds(),
			P99ns:  ph.P99.Nanoseconds(),
			MaxNs:  ph.Max.Nanoseconds(),
		})
	}
	return res, nil
}

// WriteChromeTrace emits the run's full event log in Chrome trace event
// format (the fluidmem-bench -trace flag).
func (r *TraceResult) WriteChromeTrace(w io.Writer) error {
	return r.tr.WriteChromeTrace(w)
}

// JSON renders the result for BENCH_trace.json.
func (r *TraceResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render prints the merged (across-workers) latency breakdown; per-worker
// rows stay in the JSON artifact.
func (r *TraceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault-latency breakdown — %d ops over %d pages, capacity %d, %d workers, RAMCloud, %d events (digest %#x)\n",
		r.Ops, r.Pages, r.Capacity, r.Workers, r.Events, r.Digest)
	fmt.Fprintf(&b, "%-22s %9s %12s %12s %12s %12s\n", "phase", "count", "p50", "p90", "p99", "max")
	for _, row := range r.Rows {
		if row.Worker != trace.MergedWorker {
			continue
		}
		fmt.Fprintf(&b, "%-22s %9d %12v %12v %12v %12v\n",
			row.Phase, row.Count,
			time.Duration(row.P50ns), time.Duration(row.P90ns),
			time.Duration(row.P99ns), time.Duration(row.MaxNs))
	}
	return b.String()
}
