package bench

import (
	"fmt"
	"strings"
	"time"

	"fluidmem"
	"fluidmem/internal/clock"
	"fluidmem/internal/core"
	"fluidmem/internal/stats"
	"fluidmem/internal/vm"
)

// Table2Opt names one optimisation level (a row of Table II).
type Table2Opt struct {
	Label      string
	AsyncRead  bool
	AsyncWrite bool
}

// Table2Opts is the paper's four optimisation levels.
func Table2Opts() []Table2Opt {
	return []Table2Opt{
		{Label: "Default"},
		{Label: "Async Read", AsyncRead: true},
		{Label: "Async Write", AsyncWrite: true},
		{Label: "Async Read/Write", AsyncRead: true, AsyncWrite: true},
	}
}

// Table2Cell is one measured average.
type Table2Cell struct {
	Opt        string
	Backend    string
	Sequential time.Duration
	Random     time.Duration
}

// Table2Result reproduces Table II: average fault latency by optimisation,
// backend, and access pattern, measured from the application (the paper's
// libuserfault test program, no virtualisation layer).
type Table2Result struct {
	Cells []Table2Cell
}

// RunTable2 measures all optimisation combinations.
func RunTable2(opts Options) (*Table2Result, error) {
	faults := 6000
	if opts.Quick {
		faults = 1200
	}
	res := &Table2Result{}
	for _, opt := range Table2Opts() {
		for _, backend := range []fluidmem.Backend{fluidmem.BackendDRAM, fluidmem.BackendRAMCloud} {
			seq, err := runTable2Cell(backend, opt, false, faults, opts.Seed)
			if err != nil {
				return nil, err
			}
			rnd, err := runTable2Cell(backend, opt, true, faults, opts.Seed)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Table2Cell{
				Opt:        opt.Label,
				Backend:    string(backend),
				Sequential: seq,
				Random:     rnd,
			})
		}
	}
	return res, nil
}

// runTable2Cell measures the average fault latency for one configuration.
// The working set is 4× the monitor's LRU capacity, so steady-state accesses
// to new pages always fault and always evict.
func runTable2Cell(backend fluidmem.Backend, opt Table2Opt, random bool, faults int, seed uint64) (time.Duration, error) {
	const localBytes = 2 << 20 // 512 resident pages
	const wssBytes = 8 << 20   // 2048-page working set
	m, err := newMonitorMachine(backend, localBytes, wssBytes+wssBytes/4,
		func(cfg *core.Config) {
			cfg.AsyncRead = opt.AsyncRead
			cfg.AsyncWrite = opt.AsyncWrite
			// The steal shortcut is part of the async-write machinery.
			cfg.StealEnabled = opt.AsyncWrite
		}, seed)
	if err != nil {
		return 0, err
	}
	var latencies []time.Duration
	m.Monitor().SetFaultLatencySink(func(d time.Duration) { latencies = append(latencies, d) })

	seg, err := m.Alloc("table2.wss", wssBytes)
	if err != nil {
		return 0, err
	}
	pages := seg.Pages()
	rng := clock.NewRand(seed + 77)
	// Warm-up: populate every page once so the timed phase measures the
	// store-read path, not first-touch zero-fill.
	for i := 0; i < pages; i++ {
		if err := m.Write64(seg.Addr(uint64(i)*vm.PageSize), uint64(i)); err != nil {
			return 0, err
		}
	}
	warmFaults := len(latencies)
	next := 0
	for len(latencies)-warmFaults < faults {
		var page int
		if random {
			page = rng.Intn(pages)
		} else {
			page = next
			next = (next + 1) % pages
		}
		if _, err := m.Read64(seg.Addr(uint64(page) * vm.PageSize)); err != nil {
			return 0, err
		}
	}
	timed := stats.NewSample(len(latencies) - warmFaults)
	for _, d := range latencies[warmFaults:] {
		timed.Add(d)
	}
	return timed.Mean(), nil
}

// Cell returns a measured cell (test hook).
func (r *Table2Result) Cell(opt, backend string) (Table2Cell, bool) {
	for _, c := range r.Cells {
		if c.Opt == opt && c.Backend == backend {
			return c, true
		}
	}
	return Table2Cell{}, false
}

// Render prints the paper's Table II layout.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table II: average fault latency by optimisation (application-measured, units: µs)\n")
	fmt.Fprintf(&b, "%-18s | %-10s %-10s | %-10s %-10s\n", "", "DRAM seq", "DRAM rnd", "RC seq", "RC rnd")
	for _, opt := range Table2Opts() {
		var dram, rc Table2Cell
		for _, c := range r.Cells {
			if c.Opt != opt.Label {
				continue
			}
			if c.Backend == "dram" {
				dram = c
			} else {
				rc = c
			}
		}
		fmt.Fprintf(&b, "%-18s | %-10s %-10s | %-10s %-10s\n", opt.Label,
			microseconds(dram.Sequential), microseconds(dram.Random),
			microseconds(rc.Sequential), microseconds(rc.Random))
	}
	return b.String()
}
