package bench

import (
	"fmt"
	"strings"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/core"
	"fluidmem/internal/kvstore/ramcloud"
)

// WorkersRow is one measured point of the fault-pipeline scaling curve.
type WorkersRow struct {
	// Workers is the monitor's fault-pipeline width.
	Workers int
	// Faults is store-resolved fault traffic in the measured phase.
	Faults uint64
	// Elapsed is virtual time for the measured phase across all streams.
	Elapsed time.Duration
	// Throughput is faults per virtual second.
	Throughput float64
	// WallElapsed and WallThroughput measure the measured phase in real
	// (host) time: how fast the simulator itself retires faults. Unlike the
	// virtual columns these depend on the machine and are never committed to
	// BENCH_*.json artifacts — they exist to before/after the data-plane
	// hot-path cost (see EXPERIMENTS.md).
	WallElapsed    time.Duration
	WallThroughput float64
	// MultiGets and BatchedGets show the MultiGet amortisation at work:
	// BatchedGets is the number of per-key reads those batches carried.
	MultiGets, BatchedGets uint64
}

// WorkersResult is the worker-scaling experiment: N guest fault streams over
// one monitor, at increasing pipeline widths, with batched readahead
// (MultiGet) folding each demand read and its prefetch window into one
// amortised round trip. The paper's §V-B multi-threaded fault handler is the
// mechanism; this table shows the payoff — fault throughput rising
// monotonically with workers while the shardtest oracle separately proves
// the logical behaviour never changes.
type WorkersResult struct {
	Rows []WorkersRow
}

// WorkerCounts is the swept pipeline width.
func WorkerCounts() []int { return []int{1, 2, 4, 8} }

const workersBase = 0x7d00_0000_0000

// RunWorkers measures the scaling curve.
func RunWorkers(opts Options) (*WorkersResult, error) {
	scans := 6
	if opts.Quick {
		scans = 3
	}
	res := &WorkersResult{}
	for _, workers := range WorkerCounts() {
		row, err := runWorkersRow(workers, scans, opts.Seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// runWorkersRow measures pipeline capacity under offered load: demand faults
// arrive through the deterministic event scheduler faster than any pipeline
// width can drain them, so each fault queues behind its own worker
// (workerFree) and elapsed time measures how fast the pipeline as a whole
// retires faults. Demand addresses stride by PrefetchPages+1 pages, so every
// fault's batched MultiGet pulls in exactly the pages the scan will touch
// next — the amortised round trip the MultiGets column counts.
func runWorkersRow(workers, scans int, seed uint64) (*WorkersRow, error) {
	const totalPages = 1536
	const capacity = 256 // well under totalPages: every scan misses and evicts
	const prefetch = 4
	const stride = prefetch + 1
	// Offered inter-arrival time: far below per-fault service time, so the
	// pipeline — not the arrival process — sets the pace.
	const interArrival = 2 * time.Microsecond

	store := ramcloud.New(ramcloud.DefaultParams(), seed+uint64(workers))
	cfg := core.DefaultConfig(store, capacity)
	cfg.Workers = workers
	cfg.PrefetchPages = prefetch
	cfg.BatchReads = true
	cfg.Seed = seed
	m, err := core.NewMonitor(cfg, nil, "bench-workers")
	if err != nil {
		return nil, err
	}
	if _, err := m.RegisterRange(workersBase, uint64(totalPages)*core.PageSize, 1); err != nil {
		return nil, err
	}

	// Populate: one serial pass writes every page so the measured phase is
	// pure store-read traffic (no first-touch zero-fills).
	now := time.Duration(0)
	for p := 0; p < totalPages; p++ {
		_, done, err := m.Touch(now, workersBase+uint64(p)*core.PageSize, true)
		if err != nil {
			return nil, fmt.Errorf("workers=%d populate page %d: %w", workers, p, err)
		}
		now = done
	}
	if now, err = m.Drain(now); err != nil {
		return nil, err
	}

	// Measured phase: strided scans of the whole region, arrivals spaced
	// interArrival apart. Touch(at) internally queues the fault behind its
	// worker, so the returned resume time reflects pipeline backpressure;
	// the last resume time marks the pipeline drained.
	start := now
	faultsBefore := m.Stats().Faults
	storeBefore := store.Stats()
	wallStart := time.Now()
	sched := clock.NewScheduler()
	var benchErr error
	var finish time.Duration
	arrival := start
	for scan := 0; scan < scans; scan++ {
		for p := 0; p < totalPages; p += stride {
			addr := workersBase + uint64(p)*core.PageSize
			sched.Schedule(arrival, p%stride, func(at time.Duration) {
				if benchErr != nil {
					return
				}
				_, done, err := m.Touch(at, addr, false)
				if err != nil {
					benchErr = fmt.Errorf("workers=%d touch %#x: %w", workers, addr, err)
					return
				}
				if done > finish {
					finish = done
				}
			})
			arrival += interArrival
		}
	}
	sched.Run()
	wallElapsed := time.Since(wallStart)
	if benchErr != nil {
		return nil, benchErr
	}

	elapsed := finish - start
	st := store.Stats()
	row := &WorkersRow{
		Workers:     workers,
		Faults:      m.Stats().Faults - faultsBefore,
		Elapsed:     elapsed,
		WallElapsed: wallElapsed,
		MultiGets:   st.MultiGets - storeBefore.MultiGets,
		BatchedGets: st.Gets - storeBefore.Gets,
	}
	if elapsed > 0 {
		row.Throughput = float64(row.Faults) / elapsed.Seconds()
	}
	if wallElapsed > 0 {
		row.WallThroughput = float64(row.Faults) / wallElapsed.Seconds()
	}
	return row, nil
}

// Render prints the scaling table.
func (r *WorkersResult) Render() string {
	var b strings.Builder
	b.WriteString("Worker scaling — offered-load fault pipeline, batched readahead (MultiGet), RAMCloud\n")
	fmt.Fprintf(&b, "%-8s %10s %12s %14s %16s %10s %12s\n",
		"workers", "faults", "elapsed", "faults/sec", "wall-faults/sec", "multigets", "batched-gets")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %10d %12v %14.0f %16.0f %10d %12d\n",
			row.Workers, row.Faults, row.Elapsed.Round(time.Microsecond),
			row.Throughput, row.WallThroughput, row.MultiGets, row.BatchedGets)
	}
	return b.String()
}
