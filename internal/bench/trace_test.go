package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fluidmem/internal/trace"
)

// TestTraceBreakdownRows pins the experiment's acceptance shape: the merged
// FAULT row carries plausible percentiles, the per-path FAULT.* rows split
// it, and the pipeline-stage phases (store, UFFD, eviction, flush) are all
// present with non-zero counts.
func TestTraceBreakdownRows(t *testing.T) {
	res, err := RunTrace(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 || res.Digest == 0 {
		t.Fatalf("vacuous trace run: %d events, digest %#x", res.Events, res.Digest)
	}
	merged := map[string]TraceRow{}
	workerRows := 0
	for _, row := range res.Rows {
		if row.Worker == trace.MergedWorker {
			merged[row.Phase] = row
		} else {
			workerRows++
		}
	}
	for _, phase := range []string{
		trace.EvFault, "FAULT.first_touch", "FAULT.read",
		trace.EvStoreGet, trace.EvStoreMultiPut, trace.EvFlush,
		trace.EvEvict, trace.EvUffdCopy, trace.EvUffdZeroPage,
	} {
		row, ok := merged[phase]
		if !ok || row.Count == 0 {
			t.Errorf("phase %s missing or empty in breakdown", phase)
			continue
		}
		if row.P50ns <= 0 || row.P50ns > row.P90ns || row.P90ns > row.P99ns || row.P99ns > row.MaxNs {
			t.Errorf("phase %s percentiles not monotone: %+v", phase, row)
		}
	}
	if workerRows == 0 {
		t.Error("no per-worker rows in the breakdown")
	}
	// The per-path split must account for every demand fault.
	var pathSum uint64
	for phase, row := range merged {
		if strings.HasPrefix(phase, "FAULT.") {
			pathSum += row.Count
		}
	}
	if fault := merged[trace.EvFault]; pathSum != fault.Count {
		t.Errorf("FAULT.* path rows sum to %d, FAULT counts %d", pathSum, fault.Count)
	}
}

// TestTraceDeterministicArtifacts pins the reproducibility contract at the
// bench level: same seed, same JSON artifact and same Chrome-trace bytes.
func TestTraceDeterministicArtifacts(t *testing.T) {
	a, err := RunTrace(Options{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrace(Options{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Error("same seed produced different BENCH_trace.json artifacts")
	}
	var ta, tb bytes.Buffer
	if err := a.WriteChromeTrace(&ta); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if ta.Len() == 0 || !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Errorf("same seed produced different Chrome traces (%d vs %d bytes)", ta.Len(), tb.Len())
	}
	// And the artifact is valid JSON with the documented row fields.
	var decoded struct {
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(ja, &decoded); err != nil {
		t.Fatalf("BENCH_trace.json is not valid JSON: %v", err)
	}
	if len(decoded.Rows) == 0 {
		t.Fatal("BENCH_trace.json has no rows")
	}
	for _, key := range []string{"phase", "worker", "count", "p50_ns", "p90_ns", "p99_ns", "max_ns"} {
		if _, ok := decoded.Rows[0][key]; !ok {
			t.Errorf("BENCH_trace.json rows missing %q", key)
		}
	}
}
