package bench

import (
	"fmt"
	"strings"

	"fluidmem/internal/graph500"
)

// Fig4Config scales the Graph500 experiment. The paper runs scale factors
// 20–23 (WSS 60%→480% of 1 GB local DRAM) on 2-vCPU guests; the scaled
// default preserves those ratios with smaller graphs (DESIGN.md §5).
type Fig4Config struct {
	// LocalBytes is the guest's local DRAM budget.
	LocalBytes uint64
	// Scales lists the Graph500 scale factors to sweep.
	Scales []int
	// Roots is BFS traversals per configuration (the paper uses 64).
	Roots int
	// OSTouchesPerRoot models background guest-OS activity between
	// traversals.
	OSTouchesPerRoot int
	Seed             uint64
}

// DefaultFig4Config preserves the paper's WSS/DRAM ratios: with 16 MB local
// DRAM, scales 15–18 give ≈55%, 110%, 220%, 440% (the paper's 60–480%).
func DefaultFig4Config(opts Options) Fig4Config {
	cfg := Fig4Config{
		LocalBytes:       16 << 20,
		Scales:           []int{15, 16, 17, 18},
		Roots:            8,
		OSTouchesPerRoot: 400,
		Seed:             opts.Seed,
	}
	if opts.Quick {
		cfg.LocalBytes = 4 << 20
		cfg.Scales = []int{13, 14}
		cfg.Roots = 3
		cfg.OSTouchesPerRoot = 100
	}
	return cfg
}

// Fig4Cell is one (system, scale) harmonic-mean TEPS measurement.
type Fig4Cell struct {
	System     string
	Scale      int
	WSSPercent float64
	TEPS       float64
	// MinorFaultOverheadPercent is only filled for the smallest scale on
	// FluidMem DRAM: the full-disaggregation overhead the paper quotes as
	// 2.6% (§VI-D1).
	Result *graph500.Result
}

// Fig4Result reproduces Figure 4.
type Fig4Result struct {
	Config Fig4Config
	Cells  []Fig4Cell
}

// RunFig4 sweeps Graph500 scale factors across all six systems.
func RunFig4(opts Options) (*Fig4Result, error) {
	cfg := DefaultFig4Config(opts)
	out := &Fig4Result{Config: cfg}
	for _, scale := range cfg.Scales {
		wss := graph500.MemoryBytes(scale, 16)
		for _, sys := range Systems() {
			teps, res, err := runFig4Cell(sys, cfg, scale, wss)
			if err != nil {
				return nil, fmt.Errorf("fig4 %s scale %d: %w", sys.Label, scale, err)
			}
			out.Cells = append(out.Cells, Fig4Cell{
				System:     sys.Label,
				Scale:      scale,
				WSSPercent: 100 * float64(wss) / float64(cfg.LocalBytes),
				TEPS:       teps,
				Result:     res,
			})
		}
	}
	return out, nil
}

func runFig4Cell(sys SystemConfig, cfg Fig4Config, scale int, wss uint64) (float64, *graph500.Result, error) {
	// Guest memory: graph + OS + slack. The paper's FluidMem guests get
	// 1 GB local + 4 GB hotplug; swap guests get 1 GB + swap space. Our VM
	// abstraction sizes the address space to fit the workload either way.
	guestBytes := wss*2 + cfg.LocalBytes
	m, err := newMachine(sys, cfg.LocalBytes, guestBytes, true, cfg.Seed)
	if err != nil {
		return 0, nil, err
	}
	gcfg := graph500.DefaultConfig(scale)
	gcfg.Roots = cfg.Roots
	gcfg.Seed = cfg.Seed

	// Interleave background OS activity with the benchmark by ticking the
	// OS before the run and between measurement phases. (The generator and
	// construction dominate wall time; BFS interleaving is approximated by
	// the OS hot set competing for residency.)
	if err := m.OSTick(cfg.OSTouchesPerRoot); err != nil {
		return 0, nil, err
	}
	res, _, err := graph500.Run(m.Now(), m.VM(), gcfg)
	if err != nil {
		return 0, nil, err
	}
	if err := m.OSTick(cfg.OSTouchesPerRoot); err != nil {
		return 0, nil, err
	}
	return res.HarmonicMeanTEPS, res, nil
}

// TEPS returns a cell's measurement (test hook).
func (r *Fig4Result) TEPS(system string, scale int) (float64, bool) {
	for _, c := range r.Cells {
		if c.System == system && c.Scale == scale {
			return c.TEPS, true
		}
	}
	return 0, false
}

// Render prints the figure as one table per scale factor, like the paper's
// four subplots.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: Graph500 harmonic-mean TEPS (local DRAM %d MB, %d BFS roots)\n",
		r.Config.LocalBytes>>20, r.Config.Roots)
	for _, scale := range r.Config.Scales {
		wssPct := 0.0
		for _, c := range r.Cells {
			if c.Scale == scale {
				wssPct = c.WSSPercent
				break
			}
		}
		fmt.Fprintf(&b, "\n(scale %d, WSS %.0f%% of DRAM)\n", scale, wssPct)
		fmt.Fprintf(&b, "%-20s %14s %12s\n", "System", "TEPS (M/s)", "edges")
		for _, c := range r.Cells {
			if c.Scale != scale {
				continue
			}
			fmt.Fprintf(&b, "%-20s %14.2f %12d\n", c.System, c.TEPS/1e6, c.Result.Edges)
		}
	}
	return b.String()
}
