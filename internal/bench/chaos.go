package bench

import (
	"fmt"
	"strings"
	"time"

	"fluidmem"
	"fluidmem/internal/clock"
	"fluidmem/internal/core"
	"fluidmem/internal/core/resilience"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/faulty"
	"fluidmem/internal/kvstore/ramcloud"
	"fluidmem/internal/kvstore/replicated"
	"fluidmem/internal/stats"
	"fluidmem/internal/vm"
)

// ChaosRow is one measured point of the degradation curve: the fault-latency
// distribution and the masking work done at one injected fault rate.
type ChaosRow struct {
	// Rate is the per-member transient-error (and spike) probability.
	Rate float64
	// Mean and P99 summarise application-observed fault latency.
	Mean, P99 time.Duration
	// Injected chaos, summed across the three members.
	TransientErrors, CrashRejects, Spikes uint64
	// Masking work: retries and backend failovers by the resilience layer,
	// read-path failovers and repairs by the replication layer.
	Retries, Failovers, ReadFailovers, ReadRepairs uint64
	// StallTime is virtual time parked in degraded mode.
	StallTime time.Duration
}

// ChaosResult is the degradation-curve experiment: FluidMem over a 3-way
// replicated RAMCloud whose members crash on a staggered schedule, at
// increasing transient-error rates. The paper's §III argues user-space
// paging makes replication and failure policy a provider customisation; this
// table quantifies what that policy buys — the guest keeps running with no
// hard errors while tail latency degrades smoothly instead of cliffing.
type ChaosResult struct {
	Rows []ChaosRow
}

// ChaosRates are the swept per-op fault probabilities.
func ChaosRates() []float64 { return []float64{0, 0.005, 0.01, 0.02} }

// RunChaos measures the degradation curve.
func RunChaos(opts Options) (*ChaosResult, error) {
	faults := 4000
	if opts.Quick {
		faults = 1000
	}
	res := &ChaosResult{}
	for _, rate := range ChaosRates() {
		row, err := runChaosRow(rate, faults, opts.Seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// runChaosRow measures one fault rate over a random working set 4× the LRU.
func runChaosRow(rate float64, faults int, seed uint64) (*ChaosRow, error) {
	const localBytes = 2 << 20 // 512 resident pages
	const wssBytes = 8 << 20   // 2048-page working set

	var members []*faulty.Store
	var asStores []kvstore.Store
	for i := 0; i < 3; i++ {
		p := faulty.Uniform(rate, rate)
		// Staggered 2 ms crash windows: each member takes a turn down while
		// the other two carry the load.
		from := time.Duration(2+5*i) * time.Millisecond
		p.Crashes = []faulty.Window{{From: from, To: from + 2*time.Millisecond}}
		f := faulty.Wrap(ramcloud.New(ramcloud.DefaultParams(), seed+uint64(i)), p, seed+100+uint64(i))
		members = append(members, f)
		asStores = append(asStores, f)
	}
	rep, err := replicated.New(asStores...)
	if err != nil {
		return nil, err
	}
	mcfg := core.DefaultConfig(nil, int(localBytes/fluidmem.PageSize))
	policy := resilience.DefaultPolicy()
	mcfg.Resilience = &policy
	m, err := fluidmem.NewMachine(fluidmem.MachineConfig{
		Mode:        fluidmem.ModeFluidMem,
		SharedStore: rep,
		LocalMemory: localBytes,
		GuestMemory: wssBytes + wssBytes/4,
		Monitor:     &mcfg,
		Seed:        seed,
	})
	if err != nil {
		return nil, err
	}
	lat := stats.NewSample(faults * 2)
	m.Monitor().SetFaultLatencySink(lat.Add)

	seg, err := m.Alloc("chaos.wss", wssBytes)
	if err != nil {
		return nil, err
	}
	pages := seg.Pages()
	rng := clock.NewRand(seed + 99)
	// Populate, then run a random read/write mix until enough store-read
	// faults have been measured.
	for i := 0; i < pages; i++ {
		if err := m.Write64(seg.Addr(uint64(i)*vm.PageSize), uint64(i)); err != nil {
			return nil, err
		}
	}
	warm := lat.Len()
	for lat.Len()-warm < faults {
		page := rng.Intn(pages)
		addr := seg.Addr(uint64(page) * vm.PageSize)
		if rng.Float64() < 0.3 {
			if err := m.Write64(addr, uint64(page)); err != nil {
				return nil, fmt.Errorf("chaos rate %v: write: %w", rate, err)
			}
		} else if _, err := m.Read64(addr); err != nil {
			return nil, fmt.Errorf("chaos rate %v: read: %w", rate, err)
		}
	}

	row := &ChaosRow{Rate: rate, Mean: lat.Mean(), P99: lat.Percentile(99)}
	for _, f := range members {
		s := f.InjectStats()
		row.TransientErrors += s.TransientErrors
		row.CrashRejects += s.CrashRejects
		row.Spikes += s.Spikes
	}
	if rst, ok := m.Monitor().ResilienceStats(); ok {
		row.Retries = rst.Retries
		row.Failovers = rst.Failovers
		row.StallTime = rst.StallTime
	}
	row.ReadFailovers = rep.Failovers()
	row.ReadRepairs = rep.ReadRepairs()
	return row, nil
}

// Render prints the degradation curve as a text table.
func (r *ChaosResult) Render() string {
	var b strings.Builder
	b.WriteString("Chaos: fault latency under injected failures (3-way replicated RAMCloud + resilience policy)\n")
	fmt.Fprintf(&b, "%-8s | %-10s %-10s | %-8s %-8s %-8s | %-8s %-9s %-9s %-8s | %s\n",
		"rate", "mean µs", "p99 µs", "errs", "crashes", "spikes",
		"retries", "failovers", "rd-fails", "repairs", "stall")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s | %-10s %-10s | %-8d %-8d %-8d | %-8d %-9d %-9d %-8d | %v\n",
			fmt.Sprintf("%.1f%%", row.Rate*100),
			microseconds(row.Mean), microseconds(row.P99),
			row.TransientErrors, row.CrashRejects, row.Spikes,
			row.Retries, row.Failovers, row.ReadFailovers, row.ReadRepairs,
			row.StallTime.Round(time.Microsecond))
	}
	return b.String()
}
