package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"fluidmem"
	"fluidmem/internal/clock"
	"fluidmem/internal/core"
	"fluidmem/internal/core/resilience"
	"fluidmem/internal/kvstore/cluster"
	"fluidmem/internal/stats"
	"fluidmem/internal/vm"
)

// ClusterRow is the fault-latency distribution observed during one phase of
// the cluster lifecycle.
type ClusterRow struct {
	// Phase labels the lifecycle stage the faults were measured in.
	Phase string
	// Faults is the number of measured store-read faults.
	Faults int
	// Mean, P50, P99 summarise application-observed fault latency.
	Mean, P50, P99 time.Duration
}

// ClusterResult compares guest-observed fault latency on the sharded
// multi-node pool — healthy, with a node crashed, after recovery, and after
// a graceful drain — against the single-store baseline, plus the cost of
// re-replication itself. The paper's cloud deployment assumes the remote
// memory tier survives node failure; this experiment prices that assumption:
// a crash costs at most a failover's worth of latency on reads (never an
// error), and recovery is a bounded background copy.
type ClusterResult struct {
	// Nodes and Replicas configure the pool.
	Nodes, Replicas int
	// Rows is one latency distribution per phase, in lifecycle order.
	Rows []ClusterRow
	// RecoveryTime is the virtual time Recover took: committing the
	// shrunken table plus re-replicating every under-replicated page.
	RecoveryTime time.Duration
	// RecoveredCopies is the page copies restored by that recovery.
	RecoveredCopies int
	// DrainTime is the virtual time the graceful drain took (copy +
	// cutover commit).
	DrainTime time.Duration
	// Counters is the pool's final intervention snapshot.
	Counters cluster.Counters
}

// RunCluster measures the lifecycle latency matrix.
func RunCluster(opts Options) (*ClusterResult, error) {
	faults := 3000
	if opts.Quick {
		faults = 800
	}
	const localBytes = 2 << 20 // 512 resident pages
	const wssBytes = 8 << 20   // 2048-page working set
	res := &ClusterResult{Nodes: 3, Replicas: 2}

	// Baseline: the same workload against the plain single-node RAMCloud
	// backend (no replication, nothing to survive).
	base, err := newClusterBenchMachine(fluidmem.MachineConfig{
		Mode:        fluidmem.ModeFluidMem,
		Backend:     fluidmem.BackendRAMCloud,
		LocalMemory: localBytes,
		GuestMemory: wssBytes + wssBytes/4,
		Seed:        opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	seg, pages, err := populate(base, wssBytes)
	if err != nil {
		return nil, err
	}
	row, err := measurePhase("single-store", base, seg, pages, faults, opts.Seed+50)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, *row)

	// The pool under test: one machine, phases injected between
	// measurement windows so each row sees a steady state of its stage.
	m, err := newClusterBenchMachine(fluidmem.MachineConfig{
		Mode:          fluidmem.ModeFluidMem,
		Backend:       fluidmem.BackendCluster,
		StoreNodes:    res.Nodes,
		StoreReplicas: res.Replicas,
		LocalMemory:   localBytes,
		GuestMemory:   wssBytes + wssBytes/4,
		Seed:          opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	pool := m.ClusterPool()
	seg, pages, err = populate(m, wssBytes)
	if err != nil {
		return nil, err
	}

	for i, phase := range []string{"cluster-healthy", "cluster-crashed", "cluster-recovered", "cluster-drained"} {
		switch phase {
		case "cluster-crashed":
			if err := pool.Crash(m.Now(), pool.NodeNames()[0]); err != nil {
				return nil, fmt.Errorf("bench cluster: crash: %w", err)
			}
		case "cluster-recovered":
			start := m.Now()
			done, copied, err := pool.Recover(start)
			if err != nil {
				return nil, fmt.Errorf("bench cluster: recover: %w", err)
			}
			res.RecoveryTime = done - start
			res.RecoveredCopies = copied
		case "cluster-drained":
			// Grow first so the drain keeps the pool at the replication
			// floor, then retire a survivor gracefully.
			if _, _, err := pool.AddNode(m.Now()); err != nil {
				return nil, fmt.Errorf("bench cluster: add: %w", err)
			}
			start := m.Now()
			done, err := pool.Drain(start, pool.NodeNames()[0])
			if err != nil {
				return nil, fmt.Errorf("bench cluster: drain: %w", err)
			}
			res.DrainTime = done - start
		}
		row, err := measurePhase(phase, m, seg, pages, faults, opts.Seed+60+uint64(i))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	res.Counters = pool.ClusterStats()
	return res, nil
}

// newClusterBenchMachine wires a machine with the resilience policy enabled
// (the layer that absorbs stale epochs and crash windows).
func newClusterBenchMachine(cfg fluidmem.MachineConfig) (*fluidmem.Machine, error) {
	mcfg := core.DefaultConfig(nil, int(cfg.LocalMemory/fluidmem.PageSize))
	policy := resilience.DefaultPolicy()
	mcfg.Resilience = &policy
	cfg.Monitor = &mcfg
	m, err := fluidmem.NewMachine(cfg)
	if err != nil {
		return nil, fmt.Errorf("bench cluster: %w", err)
	}
	return m, nil
}

// populate allocates and first-touches the working set.
func populate(m *fluidmem.Machine, wssBytes uint64) (*vm.Segment, int, error) {
	seg, err := m.Alloc("cluster.wss", wssBytes)
	if err != nil {
		return nil, 0, err
	}
	pages := seg.Pages()
	for i := 0; i < pages; i++ {
		if err := m.Write64(seg.Addr(uint64(i)*vm.PageSize), uint64(i)); err != nil {
			return nil, 0, err
		}
	}
	return seg, pages, nil
}

// measurePhase registers a fresh latency sink, then runs the random
// read/write mix until `faults` store-read faults land in it, so the row
// summarises exactly this lifecycle stage.
func measurePhase(phase string, m *fluidmem.Machine, seg *vm.Segment, pages, faults int, seed uint64) (*ClusterRow, error) {
	rng := clock.NewRand(seed)
	window := stats.NewSample(faults * 2)
	m.Monitor().SetFaultLatencySink(window.Add)
	for window.Len() < faults {
		page := rng.Intn(pages)
		addr := seg.Addr(uint64(page) * vm.PageSize)
		if rng.Float64() < 0.3 {
			if err := m.Write64(addr, uint64(page)); err != nil {
				return nil, fmt.Errorf("bench cluster %s: write: %w", phase, err)
			}
		} else if _, err := m.Read64(addr); err != nil {
			return nil, fmt.Errorf("bench cluster %s: read: %w", phase, err)
		}
	}
	return &ClusterRow{
		Phase:  phase,
		Faults: window.Len(),
		Mean:   window.Mean(),
		P50:    window.Percentile(50),
		P99:    window.Percentile(99),
	}, nil
}

// JSON renders the result for BENCH_cluster.json.
func (r *ClusterResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render prints the lifecycle matrix.
func (r *ClusterResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster pool lifecycle: guest fault latency, %d nodes × %d replicas vs single store\n",
		r.Nodes, r.Replicas)
	fmt.Fprintf(&b, "%-18s %8s %10s %10s %10s\n", "phase", "faults", "mean µs", "p50 µs", "p99 µs")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %8d %10s %10s %10s\n",
			row.Phase, row.Faults, microseconds(row.Mean), microseconds(row.P50), microseconds(row.P99))
	}
	fmt.Fprintf(&b, "recovery: %v for %d copies; drain: %v\n",
		r.RecoveryTime.Round(time.Microsecond), r.RecoveredCopies, r.DrainTime.Round(time.Microsecond))
	fmt.Fprintf(&b, "pool: failovers=%d read-repairs=%d re-replicated=%d stale-rejects=%d partial-puts=%d\n",
		r.Counters.Failovers, r.Counters.ReadRepairs, r.Counters.Rereplicated,
		r.Counters.StaleRejects, r.Counters.PartialPuts)
	return b.String()
}
