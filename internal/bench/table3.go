package bench

import (
	"fmt"
	"strings"

	"fluidmem"
	"fluidmem/internal/vm"
)

// Table3Row is one footprint-minimisation scenario.
type Table3Row struct {
	Scenario       string
	FootprintPages int
	FootprintMB    float64
	SSH            bool
	ICMP           bool
	Deadlocked     bool
	Revived        bool
	RevivedNA      bool // "N/A" rows in the paper (no squeeze to revive from)
}

// Table3Result reproduces Table III: the effects of reducing a VM's
// footprint to near zero.
type Table3Result struct {
	Rows []Table3Row
}

// RunTable3 walks the paper's five scenarios. Unlike the other experiments
// this one runs at full scale: the boot footprint is the paper's 81042 pages.
func RunTable3(opts Options) (*Table3Result, error) {
	res := &Table3Result{}
	profile := vm.DefaultOSProfile()
	if opts.Quick {
		profile = vm.ScaledOSProfile(8000)
	}
	// Machine big enough for the full OS: LRU capacity starts above the
	// boot footprint so "after startup" shows the natural resident size.
	newVM := func(virt vm.VirtMode) (*fluidmem.Machine, error) {
		return fluidmem.NewMachine(fluidmem.MachineConfig{
			Mode:        fluidmem.ModeFluidMem,
			Backend:     fluidmem.BackendRAMCloud,
			LocalMemory: uint64(profile.TotalPages()*2) * vm.PageSize,
			GuestMemory: uint64(profile.TotalPages()*8) * vm.PageSize,
			BootOS:      true,
			OSProfile:   profile,
			Virt:        virt,
			Seed:        opts.Seed,
		})
	}

	probeBoth := func(m *fluidmem.Machine) (ssh, icmp, deadlocked bool, err error) {
		sshRes, err := m.Probe(vm.SSHService())
		if err != nil {
			return false, false, false, err
		}
		icmpRes, err := m.Probe(vm.ICMPService())
		if err != nil {
			return false, false, false, err
		}
		return sshRes.Responded, icmpRes.Responded, sshRes.Deadlocked || icmpRes.Deadlocked, nil
	}

	// revives reports whether raising the footprint restores SSH service.
	revives := func(m *fluidmem.Machine) (bool, error) {
		if err := m.ResizeFootprint(profile.TotalPages() * 2); err != nil {
			return false, err
		}
		ssh, err := m.Probe(vm.SSHService())
		if err != nil {
			return false, err
		}
		return ssh.Responded, nil
	}

	addRow := func(scenario string, pages int, ssh, icmp, deadlocked, revived, revivedNA bool) {
		res.Rows = append(res.Rows, Table3Row{
			Scenario:       scenario,
			FootprintPages: pages,
			FootprintMB:    float64(pages) * vm.PageSize / (1 << 20),
			SSH:            ssh,
			ICMP:           icmp,
			Deadlocked:     deadlocked,
			Revived:        revived,
			RevivedNA:      revivedNA,
		})
	}

	// Row 1: after startup — the natural boot footprint.
	m, err := newVM(vm.VirtKVM)
	if err != nil {
		return nil, err
	}
	ssh, icmp, _, err := probeBoth(m)
	if err != nil {
		return nil, err
	}
	addRow("After startup", m.ResidentPages(), ssh, icmp, false, false, true)

	// Row 2: maximum balloon inflation (driver floor 20480 pages).
	m, err = newVM(vm.VirtKVM)
	if err != nil {
		return nil, err
	}
	bal := m.Balloon()
	if opts.Quick {
		bal.FloorPages = profile.TotalPages() / 4
	}
	balloonPages, _ := bal.InflateTo(m.Now(), 0)
	ssh, icmp, _, err = probeBoth(m)
	if err != nil {
		return nil, err
	}
	addRow("Max VM balloon size", balloonPages, ssh, icmp, false, false, true)

	// Rows 3–4: FluidMem LRU squeeze under KVM.
	for _, pages := range []int{180, 80} {
		m, err = newVM(vm.VirtKVM)
		if err != nil {
			return nil, err
		}
		if err := m.ResizeFootprint(pages); err != nil {
			return nil, err
		}
		ssh, icmp, deadlocked, err := probeBoth(m)
		if err != nil {
			return nil, err
		}
		revived, err := revives(m)
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("FluidMem (KVM) %d pages", pages), pages, ssh, icmp, deadlocked, revived, false)
	}

	// Row 5: one page under full virtualisation.
	m, err = newVM(vm.VirtFull)
	if err != nil {
		return nil, err
	}
	if err := m.ResizeFootprint(1); err != nil {
		return nil, err
	}
	ssh, icmp, deadlocked, err := probeBoth(m)
	if err != nil {
		return nil, err
	}
	revived, err := revives(m)
	if err != nil {
		return nil, err
	}
	addRow("FluidMem (full virtualization) 1 page", 1, ssh, icmp, deadlocked, revived, false)

	return res, nil
}

// Row returns a scenario's row (test hook).
func (r *Table3Result) Row(prefix string) (Table3Row, bool) {
	for _, row := range r.Rows {
		if strings.HasPrefix(row.Scenario, prefix) {
			return row, true
		}
	}
	return Table3Row{}, false
}

// Render prints the paper's Table III layout.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table III: effects of reducing VM footprint\n")
	fmt.Fprintf(&b, "%-40s %10s %10s %6s %6s %8s\n",
		"Scenario", "pages", "MB", "SSH", "ICMP", "Revived")
	yn := func(v bool) string {
		if v {
			return "Yes"
		}
		return "No"
	}
	for _, row := range r.Rows {
		revived := yn(row.Revived)
		if row.RevivedNA {
			revived = "N/A"
		}
		fmt.Fprintf(&b, "%-40s %10d %10.3f %6s %6s %8s\n",
			row.Scenario, row.FootprintPages, row.FootprintMB, yn(row.SSH), yn(row.ICMP), revived)
	}
	return b.String()
}
