package bench

import (
	"fmt"
	"strings"
	"time"

	"fluidmem/internal/blockdev"
	"fluidmem/internal/clock"
	"fluidmem/internal/core"
	"fluidmem/internal/kvstore/ramcloud"
	"fluidmem/internal/stats"
	"fluidmem/internal/swap"
	"fluidmem/internal/vm"
)

// This experiment realises Table III's motivation (§VI-E): "Virtual machines
// may remain on, but unused, and cloud providers could benefit from a
// mechanism to repurpose idle memory capacity for increasing density."
//
// One hypervisor with a fixed DRAM budget hosts K idle VMs plus one active
// VM. Under FluidMem a single monitor LRU spans all VMs, so the idle guests'
// cold pages drain to remote memory and the active guest ends up with nearly
// the whole budget — while the idle guests still answer pings. Under swap,
// each guest owns a fixed slice of physical DRAM: the idle VMs hold their
// frames hostage and the active VM runs in a fraction of the machine.

// DensityConfig scales the experiment.
type DensityConfig struct {
	// HostDRAMBytes is the hypervisor's DRAM budget for guest memory.
	HostDRAMBytes uint64
	// IdleVMs is the number of parked guests.
	IdleVMs int
	// Accesses is the active guest's timed workload length.
	Accesses int
	Seed     uint64
}

// DefaultDensityConfig hosts 7 idle guests plus one active one in 32 MB.
func DefaultDensityConfig(opts Options) DensityConfig {
	cfg := DensityConfig{
		HostDRAMBytes: 32 << 20,
		IdleVMs:       7,
		Accesses:      20000,
		Seed:          opts.Seed,
	}
	if opts.Quick {
		cfg.HostDRAMBytes = 16 << 20
		cfg.IdleVMs = 3
		cfg.Accesses = 4000
	}
	return cfg
}

// DensityResult compares the two mechanisms.
type DensityResult struct {
	Config DensityConfig
	// FluidMem side.
	FluidMemMean      time.Duration
	FluidMemActiveRes int // active-guest resident pages at the end
	FluidMemIdleRes   int // combined idle-guest resident pages at the end
	IdleStillRespond  bool
	// Swap side (static partitioning).
	SwapMean time.Duration
	// SwapFramesPerVM is the static slice each guest owns.
	SwapFramesPerVM int
}

// RunDensity measures the active guest's mean access latency under both
// mechanisms, at equal total host DRAM.
func RunDensity(opts Options) (*DensityResult, error) {
	cfg := DefaultDensityConfig(opts)
	res := &DensityResult{Config: cfg}

	hostPages := int(cfg.HostDRAMBytes / vm.PageSize)
	guests := cfg.IdleVMs + 1
	// Each guest's OS boots at ~30% of its fair DRAM share.
	osPages := hostPages / guests * 3 / 10
	// The active working set: sized just above host DRAM, so performance
	// hinges on how much of the machine the active guest can claim.
	wssBytes := cfg.HostDRAMBytes * 11 / 10

	// --- FluidMem: one monitor, shared LRU across all guests. ---
	store := ramcloud.New(ramcloud.DefaultParams(), cfg.Seed+1)
	mon, err := core.NewMonitor(core.DefaultConfig(store, hostPages), nil, "hyp-density")
	if err != nil {
		return nil, err
	}
	guestSpan := (uint64(osPages)*vm.PageSize + wssBytes + (8 << 20)) &^ uint64(vm.PageSize-1)
	newGuest := func(i int) (*vm.VM, *vm.GuestOS, time.Duration, error) {
		base := uint64(0x7f00_0000_0000) + uint64(i)*(guestSpan+vm.PageSize)
		pid := 1000 + i
		if _, err := mon.RegisterRange(base, guestSpan, pid); err != nil {
			return nil, nil, 0, err
		}
		guest, err := vm.New(vm.Config{Name: fmt.Sprintf("g%d", i), MemBytes: guestSpan, PID: pid, Base: base}, mon)
		if err != nil {
			return nil, nil, 0, err
		}
		os, now, err := vm.BootOS(0, guest, vm.ScaledOSProfile(osPages), cfg.Seed+uint64(i))
		return guest, os, now, err
	}

	var (
		now     time.Duration
		idleVMs []*vm.VM
		idleOS  []*vm.GuestOS
	)
	for i := 0; i < cfg.IdleVMs; i++ {
		guest, os, done, err := newGuest(i)
		if err != nil {
			return nil, fmt.Errorf("density: boot idle %d: %w", i, err)
		}
		if done > now {
			now = done
		}
		idleVMs = append(idleVMs, guest)
		idleOS = append(idleOS, os)
	}
	active, _, bootDone, err := newGuest(cfg.IdleVMs)
	if err != nil {
		return nil, fmt.Errorf("density: boot active: %w", err)
	}
	if bootDone > now {
		now = bootDone
	}

	mean, now, err := densityWorkload(now, active, wssBytes, cfg.Accesses, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("density fluidmem: %w", err)
	}
	res.FluidMemMean = mean

	// Footprint split after the run: the idle guests should have drained.
	res.FluidMemActiveRes, res.FluidMemIdleRes = splitResidency(mon, idleVMs)

	// The idle guests must still answer pings (they revive on demand).
	res.IdleStillRespond = true
	for i, g := range idleVMs {
		fileSeg := idleOS[i].Segments()[1]
		probe, done, err := vm.Probe(now, g, fileSeg, vm.ICMPService())
		if err != nil {
			return nil, err
		}
		now = done
		if !probe.Responded {
			res.IdleStillRespond = false
		}
	}

	// --- Swap: static DRAM partitioning, one subsystem per guest. ---
	res.SwapFramesPerVM = hostPages / guests
	swapDev, err := blockdev.New(blockdev.NVMeoFParams(cfg.HostDRAMBytes*8), cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	fsDev, err := blockdev.New(blockdev.SSDParams(cfg.HostDRAMBytes*8), cfg.Seed+3)
	if err != nil {
		return nil, err
	}
	sub, err := swap.New(swap.DefaultParams(res.SwapFramesPerVM), swapDev, fsDev, cfg.Seed+4)
	if err != nil {
		return nil, err
	}
	swapGuest, err := vm.New(vm.Config{Name: "swap-active", MemBytes: guestSpan, PID: 1, Base: 0x7f00_0000_0000}, sub)
	if err != nil {
		return nil, err
	}
	swapNow := time.Duration(0)
	if _, swapNow, err = vm.BootOS(swapNow, swapGuest, vm.ScaledOSProfile(osPages), cfg.Seed+9); err != nil {
		return nil, err
	}
	mean, _, err = densityWorkload(swapNow, swapGuest, wssBytes, cfg.Accesses, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("density swap: %w", err)
	}
	res.SwapMean = mean
	return res, nil
}

// densityWorkload warms a working set and measures mean random-access
// latency over it.
func densityWorkload(now time.Duration, guest *vm.VM, wssBytes uint64, accesses int, seed uint64) (time.Duration, time.Duration, error) {
	seg, err := guest.Alloc("active.wss", wssBytes, vm.ClassAnon)
	if err != nil {
		return 0, now, err
	}
	pages := seg.Pages()
	for i := 0; i < pages; i++ {
		if _, now, err = guest.Touch(now, seg.Addr(uint64(i)*vm.PageSize), true); err != nil {
			return 0, now, err
		}
	}
	rng := clock.NewRand(seed + 77)
	sample := stats.NewSample(accesses)
	for n := 0; n < accesses; n++ {
		start := now
		if _, now, err = guest.Touch(now, seg.Addr(uint64(rng.Intn(pages))*vm.PageSize), n%2 == 0); err != nil {
			return 0, now, err
		}
		sample.Add(now - start)
	}
	return sample.Mean(), now, nil
}

// splitResidency counts resident pages belonging to the idle guests by
// walking their allocated ranges; everything else is the active guest's.
func splitResidency(mon *core.Monitor, idle []*vm.VM) (activeRes, idleRes int) {
	for _, g := range idle {
		for _, seg := range g.Segments() {
			for a := seg.Start; a < seg.End(); a += vm.PageSize {
				if mon.PageResident(a) {
					idleRes++
				}
			}
		}
	}
	return mon.ResidentPages() - idleRes, idleRes
}

// Render prints the comparison.
func (r *DensityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Density: %d idle + 1 active guest in %d MB host DRAM (§VI-E motivation)\n",
		r.Config.IdleVMs, r.Config.HostDRAMBytes>>20)
	fmt.Fprintf(&b, "%-44s %12s\n", "Mechanism", "active avg µs")
	fmt.Fprintf(&b, "%-44s %12s\n",
		fmt.Sprintf("FluidMem shared LRU (idle drained to %d pages)", r.FluidMemIdleRes),
		microseconds(r.FluidMemMean))
	fmt.Fprintf(&b, "%-44s %12s\n",
		fmt.Sprintf("Swap static split (%d frames per guest)", r.SwapFramesPerVM),
		microseconds(r.SwapMean))
	fmt.Fprintf(&b, "active guest resident: %d pages; idle guests respond to ICMP: %v\n",
		r.FluidMemActiveRes, r.IdleStillRespond)
	return b.String()
}
