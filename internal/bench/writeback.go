package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/core"
	"fluidmem/internal/kvstore/ramcloud"
)

// WritebackRow is one write-back pipeline configuration measured under the
// shared mixed workload.
type WritebackRow struct {
	// Label names the configuration: per-page-put, multiput-batched, or
	// multiput-elide-drop.
	Label string `json:"label"`
	// Faults is store-level fault traffic retired in the measured phase.
	Faults uint64 `json:"faults"`
	// Elapsed is the virtual time the pipeline took to drain the offered
	// load; Throughput is faults per virtual second.
	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"faults_per_sec"`
	// WallElapsed and WallThroughput measure the row in real (host) time —
	// how fast the simulator itself retires faults. Machine-dependent, so
	// excluded from the committed JSON artifact (the ratchet gates only the
	// deterministic virtual rows); see EXPERIMENTS.md for the before/after
	// recipe they support.
	WallElapsed    time.Duration `json:"-"`
	WallThroughput float64       `json:"-"`
	// StorePuts counts pages that actually crossed the wire (per-key puts,
	// including those carried inside MultiPuts); MultiPuts counts the
	// amortised round trips that carried them.
	StorePuts uint64 `json:"store_puts"`
	MultiPuts uint64 `json:"store_multiputs"`
	// ZeroElided and CleanDropped are evictions that cost no store write at
	// all; WritesAvoided is their sum. Coalesced counts re-evictions absorbed
	// into a queued entry before flushing.
	ZeroElided    uint64 `json:"zero_elided"`
	CleanDropped  uint64 `json:"clean_dropped"`
	WritesAvoided uint64 `json:"writes_avoided"`
	Coalesced     uint64 `json:"coalesced"`
	// FlushSizes histograms MultiPut batch sizes (batch size -> count).
	FlushSizes map[int]uint64 `json:"flush_size_histogram"`
}

// WritebackResult is the write-back pipeline comparison: one workload (mixed
// reads, non-zero writes, and zeroing writes over a region far larger than
// local DRAM) replayed against three eviction write paths. Row 1 writes every
// victim synchronously, one store Put per eviction — the pre-§V-B monitor.
// Row 2 batches victims on the asynchronous write list and flushes them with
// one amortised MultiPut. Row 3 adds the dirty-aware elisions: all-zero
// victims enter the zero bitmap instead of the wire, and still-clean victims
// (store copy current, no write since install) are dropped outright.
type WritebackResult struct {
	Pages    int            `json:"pages"`
	Capacity int            `json:"capacity"`
	Ops      int            `json:"ops"`
	Workers  int            `json:"workers"`
	Seed     uint64         `json:"seed"`
	Rows     []WritebackRow `json:"rows"`
}

// wbOp is one precomputed guest touch, identical across rows.
type wbOp struct {
	addr  uint64
	write bool
	tag   byte
}

const writebackBase = 0x7e00_0000_0000

// writebackVariant is one row's configuration delta over DefaultConfig.
type writebackVariant struct {
	label  string
	mutate func(*core.Config)
}

func writebackVariants() []writebackVariant {
	return []writebackVariant{
		// Synchronous per-page writes on the fault critical path: no write
		// list, so no batching, stealing, or elision.
		{"per-page-put", func(c *core.Config) {
			c.AsyncWrite = false
			c.StealEnabled = false
		}},
		// The §V-B asynchronous write list with MultiPut group flushes.
		{"multiput-batched", nil},
		// Group flushes plus zero-page elision and clean-page drop.
		{"multiput-elide-drop", func(c *core.Config) {
			c.ElideZeroPages = true
			c.CleanPageDrop = true
		}},
	}
}

// RunWriteback measures the three write paths under one offered load.
func RunWriteback(opts Options) (*WritebackResult, error) {
	pages, capacity, ops := 1024, 192, 4096
	if opts.Quick {
		pages, capacity, ops = 256, 48, 1024
	}
	const workers = 4
	res := &WritebackResult{
		Pages: pages, Capacity: capacity, Ops: ops,
		Workers: workers, Seed: opts.Seed,
	}

	// Precompute the op stream once: every row sees byte-identical guest
	// behaviour, so the rows differ only in the eviction write path. Half the
	// touches write; half of those writes zero the page (the harness only
	// ever sets data[0], so a zero tag restores all-zero contents).
	rng := clock.NewRand(opts.Seed ^ 0xb17e_bac4)
	stream := make([]wbOp, ops)
	for i := range stream {
		op := wbOp{addr: writebackBase + uint64(rng.Intn(pages))*core.PageSize}
		if rng.Float64() < 0.5 {
			op.write = true
			op.tag = byte(i%249) + 1
			if rng.Intn(2) == 0 {
				op.tag = 0
			}
		}
		stream[i] = op
	}

	for _, v := range writebackVariants() {
		row, err := runWritebackRow(v, stream, pages, capacity, workers, opts.Seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// runWritebackRow replays the shared op stream against one configuration,
// measuring the pipeline's drain time and the store write traffic it cost.
func runWritebackRow(v writebackVariant, stream []wbOp, pages, capacity, workers int, seed uint64) (*WritebackRow, error) {
	// Offered inter-arrival time far below per-fault service time, so the
	// pipeline — not the arrival process — sets the pace (same method as the
	// workers experiment).
	const interArrival = 2 * time.Microsecond

	store := ramcloud.New(ramcloud.DefaultParams(), seed+101)
	cfg := core.DefaultConfig(store, capacity)
	cfg.Workers = workers
	cfg.Seed = seed
	if v.mutate != nil {
		v.mutate(&cfg)
	}
	m, err := core.NewMonitor(cfg, nil, "bench-writeback")
	if err != nil {
		return nil, err
	}
	if _, err := m.RegisterRange(writebackBase, uint64(pages)*core.PageSize, 1); err != nil {
		return nil, err
	}

	// Populate: one serial pass writes a non-zero tag into every page, so the
	// measured phase starts with every page dirty-backed in the store.
	now := time.Duration(0)
	for p := 0; p < pages; p++ {
		data, done, err := m.Touch(now, writebackBase+uint64(p)*core.PageSize, true)
		if err != nil {
			return nil, fmt.Errorf("%s populate page %d: %w", v.label, p, err)
		}
		data[0] = byte(p%249) + 1
		now = done
	}
	if now, err = m.Drain(now); err != nil {
		return nil, err
	}

	start := now
	statsBefore := m.Stats()
	storeBefore := store.Stats()
	wbBefore := m.WritebackStats()

	wallStart := time.Now()
	sched := clock.NewScheduler()
	var benchErr error
	var finish time.Duration
	arrival := start
	for i, op := range stream {
		op := op
		sched.Schedule(arrival, i, func(at time.Duration) {
			if benchErr != nil {
				return
			}
			data, done, err := m.Touch(at, op.addr, op.write)
			if err != nil {
				benchErr = fmt.Errorf("%s touch %#x: %w", v.label, op.addr, err)
				return
			}
			if op.write {
				data[0] = op.tag
			}
			if done > finish {
				finish = done
			}
		})
		arrival += interArrival
	}
	sched.Run()
	wallElapsed := time.Since(wallStart)
	if benchErr != nil {
		return nil, benchErr
	}
	if _, err := m.Drain(finish); err != nil {
		return nil, err
	}

	stats := m.Stats()
	st := store.Stats()
	wb := m.WritebackStats()
	row := &WritebackRow{
		Label:        v.label,
		Faults:       stats.Faults - statsBefore.Faults,
		Elapsed:      finish - start,
		StorePuts:    st.Puts - storeBefore.Puts,
		MultiPuts:    st.MultiPuts - storeBefore.MultiPuts,
		ZeroElided:   stats.ZeroElided - statsBefore.ZeroElided,
		CleanDropped: stats.CleanDropped - statsBefore.CleanDropped,
		Coalesced:    wb.Coalesced - wbBefore.Coalesced,
		FlushSizes:   make(map[int]uint64),
	}
	row.WallElapsed = wallElapsed
	row.WritesAvoided = row.ZeroElided + row.CleanDropped
	for size, count := range wb.FlushSizes {
		if delta := count - wbBefore.FlushSizes[size]; delta > 0 {
			row.FlushSizes[size] = delta
		}
	}
	if row.Elapsed > 0 {
		row.Throughput = float64(row.Faults) / row.Elapsed.Seconds()
	}
	if wallElapsed > 0 {
		row.WallThroughput = float64(row.Faults) / wallElapsed.Seconds()
	}
	return row, nil
}

// JSON renders the result for BENCH_writeback.json.
func (r *WritebackResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render prints the comparison table.
func (r *WritebackResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Write-back pipeline — %d ops over %d pages, capacity %d, %d workers, RAMCloud\n",
		r.Ops, r.Pages, r.Capacity, r.Workers)
	fmt.Fprintf(&b, "%-20s %8s %12s %12s %16s %10s %10s %8s %8s %9s\n",
		"config", "faults", "elapsed", "faults/sec", "wall-faults/sec", "store-puts", "multiputs", "elided", "dropped", "coalesced")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-20s %8d %12v %12.0f %16.0f %10d %10d %8d %8d %9d\n",
			row.Label, row.Faults, row.Elapsed.Round(time.Microsecond), row.Throughput, row.WallThroughput,
			row.StorePuts, row.MultiPuts, row.ZeroElided, row.CleanDropped, row.Coalesced)
	}
	for _, row := range r.Rows {
		if len(row.FlushSizes) == 0 {
			continue
		}
		sizes := make([]int, 0, len(row.FlushSizes))
		for size := range row.FlushSizes {
			sizes = append(sizes, size)
		}
		sort.Ints(sizes)
		fmt.Fprintf(&b, "flush sizes (%s):", row.Label)
		for _, size := range sizes {
			fmt.Fprintf(&b, " %d×%d", size, row.FlushSizes[size])
		}
		b.WriteString("\n")
	}
	return b.String()
}
