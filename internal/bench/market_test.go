package bench

import (
	"strings"
	"testing"
)

// The quick-scale marketplace experiment must produce the full 3×3 grid
// with live SLO enforcement in every market row — the property Validate
// gates the BENCH_market.json artifact on.
func TestMarketBenchEnforcesSLOs(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment still takes seconds")
	}
	res, err := RunMarket(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Rows); got != 9 {
		t.Fatalf("rows = %d, want 3 mixes × 3 variants", got)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("quick-scale result fails its own artifact guard: %v", err)
	}
	for _, row := range res.Rows {
		if row.Variant != "market" {
			if row.Market != nil {
				t.Errorf("%s/%s: marketplace counters on a non-market row", row.Mix, row.Variant)
			}
			continue
		}
		if row.Market == nil || row.Market.SLOEnforcedEpochs == 0 {
			t.Errorf("%s/market: no SLO-enforced epochs: %+v", row.Mix, row.Market)
		}
		if row.SLOWindows == 0 {
			t.Errorf("%s/market: no SLO windows evaluated", row.Mix)
		}
	}
	// The adversarial market must actually trade and claw back; the skewed
	// comparison must stay within the +5% fault-cost bound.
	var adv *MarketVariantRow
	for i := range res.Rows {
		if res.Rows[i].Mix == "adversarial" && res.Rows[i].Variant == "market" {
			adv = &res.Rows[i]
		}
	}
	if adv == nil || adv.Market.Leases == 0 || adv.Market.Clawbacks == 0 {
		t.Fatalf("adversarial market never traded/clawed back: %+v", adv)
	}
	if !res.WithinSkewedCostBound {
		t.Errorf("skewed fault-cost delta %+.1f%% outside the +5%% bound", res.SkewedCostDeltaPct)
	}
	if _, err := res.JSON(); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if out := res.Render(); !strings.Contains(out, "adversarial") || !strings.Contains(out, "skewed mix") {
		t.Fatalf("render missing sections:\n%s", out)
	}
}

// A result whose market rows never enforced an SLO must be refused: both
// Validate and JSON (which bench-json relies on) reject it.
func TestMarketBenchValidateRejectsVacuousRuns(t *testing.T) {
	cases := []struct {
		name string
		res  MarketResult
		want string
	}{
		{"no market rows", MarketResult{}, "no market variant rows"},
		{"missing counters", MarketResult{Rows: []MarketVariantRow{
			{Mix: "skewed", Variant: "market"},
		}}, "no marketplace counters"},
		{"zero epochs", MarketResult{Rows: []MarketVariantRow{
			{Mix: "skewed", Variant: "market", Market: &MarketActivity{}},
		}}, "zero epochs"},
		{"zero SLO enforcement", MarketResult{Rows: []MarketVariantRow{
			{Mix: "skewed", Variant: "market", Market: &MarketActivity{Epochs: 4}},
		}}, "zero SLO-enforcement epochs"},
		{"zero windows", MarketResult{Rows: []MarketVariantRow{
			{Mix: "skewed", Variant: "market",
				Market: &MarketActivity{Epochs: 4, SLOEnforcedEpochs: 4}},
		}}, "zero SLO windows"},
	}
	for _, c := range cases {
		err := c.res.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
		if _, jerr := c.res.JSON(); jerr == nil {
			t.Errorf("%s: JSON() serialised an invalid result", c.name)
		}
	}
}
