package bench

import (
	"fmt"
	"strings"
	"time"

	"fluidmem/internal/stats"
	"fluidmem/internal/workload/pmbench"
)

// Fig3Config scales the Figure 3 experiment. The paper: 1 GB local DRAM, a
// 4 GB pmbench working set (plus hotplug to 5 GB), 100 s of 4 KB accesses at
// a 50% read ratio. The scaled default preserves the 4:1 WSS-to-DRAM ratio.
type Fig3Config struct {
	LocalBytes uint64
	WSSBytes   uint64
	Accesses   int
	Seed       uint64
}

// DefaultFig3Config returns the scaled recipe (16 MB local, 64 MB WSS).
func DefaultFig3Config(opts Options) Fig3Config {
	cfg := Fig3Config{
		LocalBytes: 16 << 20,
		WSSBytes:   64 << 20,
		Accesses:   40000,
		Seed:       opts.Seed,
	}
	if opts.Quick {
		cfg.LocalBytes = 2 << 20
		cfg.WSSBytes = 8 << 20
		cfg.Accesses = 4000
	}
	return cfg
}

// Fig3Line is one backend's latency distribution.
type Fig3Line struct {
	System string
	Result *pmbench.Result
}

// Fig3Result reproduces Figure 3: per-system page-fault latency CDFs.
type Fig3Result struct {
	Config Fig3Config
	Lines  []Fig3Line
}

// RunFig3 measures pmbench latency distributions across all six systems.
func RunFig3(opts Options) (*Fig3Result, error) {
	cfg := DefaultFig3Config(opts)
	out := &Fig3Result{Config: cfg}
	for _, sys := range Systems() {
		// Guest memory: WSS plus slack for allocator metadata.
		guest := cfg.WSSBytes + cfg.WSSBytes/4
		m, err := newMachine(sys, cfg.LocalBytes, guest, false, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pcfg := pmbench.DefaultConfig(cfg.WSSBytes)
		pcfg.Duration = time.Hour // bounded by MaxAccesses instead
		pcfg.MaxAccesses = cfg.Accesses
		pcfg.Seed = cfg.Seed
		res, _, err := pmbench.Run(m.Now(), m.VM(), pcfg)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s: %w", sys.Label, err)
		}
		out.Lines = append(out.Lines, Fig3Line{System: sys.Label, Result: res})
	}
	return out, nil
}

// Render prints the figure as per-system CDF summaries plus the average
// latencies the paper reports in each subplot caption.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: pmbench latency CDFs (WSS %d MB over %d MB local DRAM, %d accesses)\n",
		r.Config.WSSBytes>>20, r.Config.LocalBytes>>20, r.Config.Accesses)
	fmt.Fprintf(&b, "%-20s %10s %10s %10s %10s %10s %12s\n",
		"System", "avg µs", "p50 µs", "p90 µs", "p99 µs", "read µs", "write µs")
	for _, line := range r.Lines {
		s := line.Result.Latencies
		fmt.Fprintf(&b, "%-20s %10s %10s %10s %10s %10s %12s\n",
			line.System,
			microseconds(s.Mean()),
			microseconds(s.Percentile(50)),
			microseconds(s.Percentile(90)),
			microseconds(s.Percentile(99)),
			microseconds(line.Result.ReadLatencies.Mean()),
			microseconds(line.Result.WriteLatencies.Mean()))
	}
	b.WriteString("\nCDF detail (fraction of faults at or below latency):\n")
	for _, line := range r.Lines {
		b.WriteString(stats.RenderCDFASCII(line.System, line.Result.Latencies, 40))
	}
	return b.String()
}

// Average returns a system's mean latency (test hook).
func (r *Fig3Result) Average(system string) (time.Duration, bool) {
	for _, line := range r.Lines {
		if line.System == system {
			return line.Result.Latencies.Mean(), true
		}
	}
	return 0, false
}
