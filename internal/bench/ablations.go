package bench

import (
	"fmt"
	"strings"
	"time"

	"fluidmem"
	"fluidmem/internal/clock"
	"fluidmem/internal/core"
	"fluidmem/internal/stats"
	"fluidmem/internal/workload/pmbench"
)

// AblationPoint is one configuration's measurement.
type AblationPoint struct {
	Label string
	// MeanLatency is the pmbench mean access latency.
	MeanLatency time.Duration
	// P99Latency is the tail.
	P99Latency time.Duration
	// StoreGets/StorePuts expose the remote traffic behind the number.
	StoreGets uint64
	StorePuts uint64
	Steals    uint64
}

// AblationResult is a one-dimensional sweep.
type AblationResult struct {
	Name   string
	Points []AblationPoint
}

// runAblationPoint measures pmbench over a RAMCloud monitor variant.
func runAblationPoint(label string, localBytes, wssBytes uint64, accesses int, mutate func(*core.Config), seed uint64) (AblationPoint, error) {
	return runAblationPointDense(label, localBytes, wssBytes, accesses, 0, mutate, seed)
}

// runAblationPointDense additionally controls the page fill density (used by
// the compression ablation, where page contents matter).
func runAblationPointDense(label string, localBytes, wssBytes uint64, accesses int, density float64, mutate func(*core.Config), seed uint64) (AblationPoint, error) {
	m, err := newMonitorMachine(fluidmem.BackendRAMCloud, localBytes, wssBytes+wssBytes/4, mutate, seed)
	if err != nil {
		return AblationPoint{}, err
	}
	cfg := pmbench.DefaultConfig(wssBytes)
	cfg.Duration = time.Hour
	cfg.MaxAccesses = accesses
	cfg.FillDensity = density
	cfg.Seed = seed
	res, _, err := pmbench.Run(m.Now(), m.VM(), cfg)
	if err != nil {
		return AblationPoint{}, fmt.Errorf("ablation %s: %w", label, err)
	}
	st := m.Store().Stats()
	return AblationPoint{
		Label:       label,
		MeanLatency: res.Latencies.Mean(),
		P99Latency:  res.Latencies.Percentile(99),
		StoreGets:   st.Gets,
		StorePuts:   st.Puts,
		Steals:      m.Monitor().Stats().Steals,
	}, nil
}

func ablationScale(opts Options) (localBytes, wssBytes uint64, accesses int) {
	if opts.Quick {
		return 1 << 20, 4 << 20, 2500
	}
	return 4 << 20, 16 << 20, 15000
}

// RunAblationSteal measures A1: write-list page stealing on vs off (§V-B:
// the steal "shortcuts two round trips to the remote key-value store").
func RunAblationSteal(opts Options) (*AblationResult, error) {
	local, wss, accesses := ablationScale(opts)
	out := &AblationResult{Name: "A1: write-list stealing"}
	for _, steal := range []bool{true, false} {
		steal := steal
		label := "steal=off"
		if steal {
			label = "steal=on"
		}
		p, err := runAblationPoint(label, local, wss, accesses, func(cfg *core.Config) {
			cfg.StealEnabled = steal
			cfg.WriteBatchSize = 64 // a deep write list gives stealing room to matter
		}, opts.Seed)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// RunAblationBatch measures A2: writeback batch-size sweep (multi-write
// amortisation vs write-list staleness).
func RunAblationBatch(opts Options) (*AblationResult, error) {
	local, wss, accesses := ablationScale(opts)
	out := &AblationResult{Name: "A2: writeback batch size"}
	for _, batch := range []int{1, 4, 16, 32, 128} {
		batch := batch
		p, err := runAblationPoint(fmt.Sprintf("batch=%d", batch), local, wss, accesses, func(cfg *core.Config) {
			cfg.WriteBatchSize = batch
		}, opts.Seed)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// RunAblationRemap measures A3: zero-copy UFFD_REMAP eviction vs copy-out
// (§V-B zero-copy semantics: "UFFD_REMAP ... is not always faster than
// UFFD_COPY because of the synchronization required").
func RunAblationRemap(opts Options) (*AblationResult, error) {
	local, wss, accesses := ablationScale(opts)
	out := &AblationResult{Name: "A3: eviction mechanism"}
	for _, withCopy := range []bool{false, true} {
		withCopy := withCopy
		label := "UFFD_REMAP (zero-copy)"
		if withCopy {
			label = "copy-out + zap"
		}
		p, err := runAblationPoint(label, local, wss, accesses, func(cfg *core.Config) {
			cfg.EvictWithCopy = withCopy
		}, opts.Seed)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// RunAblationLRU measures A4: LRU capacity sweep — the local-hit ratio vs
// footprint trade-off behind the paper's resizable buffer.
func RunAblationLRU(opts Options) (*AblationResult, error) {
	_, wss, accesses := ablationScale(opts)
	out := &AblationResult{Name: "A4: LRU list size"}
	for _, frac := range []int{8, 4, 2, 1} {
		frac := frac
		local := wss / uint64(frac)
		p, err := runAblationPoint(fmt.Sprintf("local=WSS/%d", frac), local, wss, accesses, nil, opts.Seed)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// RunAblationCompress measures A5: the zswap-style compressed tier (§III's
// page-compression customisation) across pool sizes. pmbench pages are
// mostly zero-filled, so the tier absorbs most refaults at decompression
// speed; the sweep shows the latency win and the remote traffic removed.
func RunAblationCompress(opts Options) (*AblationResult, error) {
	local, wss, accesses := ablationScale(opts)
	out := &AblationResult{Name: "A5: compressed tier pool size"}
	for _, frac := range []int{0, 16, 4, 1} {
		frac := frac
		label := "pool=off"
		var pool uint64
		if frac > 0 {
			pool = wss / uint64(frac)
			label = fmt.Sprintf("pool=WSS/%d", frac)
		}
		// Half-dense pages: compressible at ratio ≈ 0.5, so pool budgets bind.
		p, err := runAblationPointDense(label, local, wss, accesses, 0.5, func(cfg *core.Config) {
			if pool > 0 {
				params := core.DefaultCompressParams(pool)
				cfg.Compress = &params
			}
		}, opts.Seed)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// RunAblationPrefetch measures A6: sequential prefetching on/off for
// sequential and random access patterns. Prefetching pays off on scans and
// costs wasted store reads on random access — the trade-off that keeps it
// opt-in (the paper's own configuration disables swap readahead).
func RunAblationPrefetch(opts Options) (*AblationResult, error) {
	local, wss, accesses := ablationScale(opts)
	out := &AblationResult{Name: "A6: sequential prefetching"}
	for _, p := range []struct {
		label    string
		prefetch int
		seq      bool
	}{
		{"seq, prefetch=0", 0, true},
		{"seq, prefetch=8", 8, true},
		{"rand, prefetch=0", 0, false},
		{"rand, prefetch=8", 8, false},
	} {
		p := p
		point, err := runSequentialPoint(p.label, local, wss, accesses, p.seq, func(cfg *core.Config) {
			cfg.PrefetchPages = p.prefetch
		}, opts.Seed)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, point)
	}
	return out, nil
}

// runSequentialPoint measures average access latency for a strided or random
// sweep over a working set 4× the local budget.
func runSequentialPoint(label string, localBytes, wssBytes uint64, accesses int, sequential bool, mutate func(*core.Config), seed uint64) (AblationPoint, error) {
	m, err := newMonitorMachine(fluidmem.BackendRAMCloud, localBytes, wssBytes+wssBytes/4, mutate, seed)
	if err != nil {
		return AblationPoint{}, err
	}
	seg, err := m.Alloc("a6.wss", wssBytes)
	if err != nil {
		return AblationPoint{}, err
	}
	pages := seg.Pages()
	rng := clock.NewRand(seed + 99)
	// Populate.
	for i := 0; i < pages; i++ {
		if err := m.Write64(seg.Addr(uint64(i)*fluidmem.PageSize), uint64(i)); err != nil {
			return AblationPoint{}, err
		}
	}
	lat := stats.NewSample(accesses)
	next := 0
	for n := 0; n < accesses; n++ {
		page := next
		if sequential {
			next = (next + 1) % pages
		} else {
			page = rng.Intn(pages)
		}
		start := m.Now()
		if _, err := m.Read64(seg.Addr(uint64(page) * fluidmem.PageSize)); err != nil {
			return AblationPoint{}, err
		}
		lat.Add(m.Now() - start)
	}
	st := m.Store().Stats()
	return AblationPoint{
		Label:       label,
		MeanLatency: lat.Mean(),
		P99Latency:  lat.Percentile(99),
		StoreGets:   st.Gets,
		StorePuts:   st.Puts,
		Steals:      m.Monitor().Stats().Steals,
	}, nil
}

// Render prints the sweep.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation %s\n", r.Name)
	fmt.Fprintf(&b, "%-24s %10s %10s %10s %10s %8s\n", "Config", "avg µs", "p99 µs", "gets", "puts", "steals")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-24s %10s %10s %10d %10d %8d\n",
			p.Label, microseconds(p.MeanLatency), microseconds(p.P99Latency), p.StoreGets, p.StorePuts, p.Steals)
	}
	return b.String()
}
