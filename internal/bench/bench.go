// Package bench contains the experiment harness that regenerates every table
// and figure in the paper's evaluation (§VI), plus the ablations listed in
// DESIGN.md. Each experiment builds scaled-down machines (same ratios as the
// paper's testbed, smaller absolute sizes; see DESIGN.md §5), runs the
// paper's workload recipe, and renders a paper-style text table.
package bench

import (
	"fmt"
	"time"

	"fluidmem"
	"fluidmem/internal/core"
	"fluidmem/internal/vm"
)

// Options tune experiment scale.
type Options struct {
	// Quick shrinks workloads for use inside `go test -bench` iterations;
	// the full-size runs back EXPERIMENTS.md.
	Quick bool
	// Seed drives all randomness.
	Seed uint64
}

// DefaultOptions returns the full-scale configuration.
func DefaultOptions() Options {
	return Options{Seed: 1}
}

// SystemConfig names one (mechanism, backend) comparison point — a column
// group in Figure 3 and Figure 4.
type SystemConfig struct {
	// Label is the paper's name for the configuration.
	Label string
	// Mode and Backend/SwapDev pick the machine wiring.
	Mode    fluidmem.Mode
	Backend fluidmem.Backend
	SwapDev fluidmem.SwapDevice
}

// Systems is the paper's six-way comparison (Figure 3, Figure 4).
func Systems() []SystemConfig {
	return []SystemConfig{
		{Label: "FluidMem DRAM", Mode: fluidmem.ModeFluidMem, Backend: fluidmem.BackendDRAM},
		{Label: "FluidMem RAMCloud", Mode: fluidmem.ModeFluidMem, Backend: fluidmem.BackendRAMCloud},
		{Label: "FluidMem Memcached", Mode: fluidmem.ModeFluidMem, Backend: fluidmem.BackendMemcached},
		{Label: "Swap DRAM", Mode: fluidmem.ModeSwap, SwapDev: fluidmem.SwapDRAM},
		{Label: "Swap NVMeoF", Mode: fluidmem.ModeSwap, SwapDev: fluidmem.SwapNVMeoF},
		{Label: "Swap SSD", Mode: fluidmem.ModeSwap, SwapDev: fluidmem.SwapSSD},
	}
}

// newMachine builds a machine for a system at the given memory ratio.
func newMachine(sys SystemConfig, localBytes, guestBytes uint64, bootOS bool, seed uint64) (*fluidmem.Machine, error) {
	cfg := fluidmem.MachineConfig{
		Mode:        sys.Mode,
		Backend:     sys.Backend,
		SwapDev:     sys.SwapDev,
		LocalMemory: localBytes,
		GuestMemory: guestBytes,
		BootOS:      bootOS,
		Seed:        seed,
	}
	m, err := fluidmem.NewMachine(cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", sys.Label, err)
	}
	return m, nil
}

// newMonitorMachine builds a FluidMem machine with explicit monitor
// optimisation toggles (Table II, ablations).
func newMonitorMachine(backend fluidmem.Backend, localBytes, guestBytes uint64, mutate func(*core.Config), seed uint64) (*fluidmem.Machine, error) {
	mcfg := core.DefaultConfig(nil, int(localBytes/fluidmem.PageSize))
	if mutate != nil {
		mutate(&mcfg)
	}
	return fluidmem.NewMachine(fluidmem.MachineConfig{
		Mode:        fluidmem.ModeFluidMem,
		Backend:     backend,
		LocalMemory: localBytes,
		GuestMemory: guestBytes,
		Monitor:     &mcfg,
		Seed:        seed,
	})
}

// microseconds formats a duration the way the paper's tables do.
func microseconds(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Microsecond))
}

// scaledOSPages is the boot footprint used by scaled experiments: the paper's
// guests boot at ≈30% of their 1 GB local DRAM.
func scaledOSPages(localBytes uint64) int {
	return int(localBytes / vm.PageSize * 3 / 10)
}
