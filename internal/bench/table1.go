package bench

import (
	"fmt"
	"strings"
	"time"

	"fluidmem"
	"fluidmem/internal/core"
	"fluidmem/internal/stats"
	"fluidmem/internal/workload/pmbench"
)

// Table1Row is one code path's latency profile.
type Table1Row struct {
	CodePath string
	Avg      time.Duration
	Stdev    time.Duration
	P99      time.Duration
	Samples  int
}

// Table1Result reproduces Table I: latencies of the monitor's code paths
// during synchronous fault handling with the RAMCloud backend.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 profiles the monitor's code paths. Per the paper, profiling runs
// with the optimisations disabled (synchronous handling) on RAMCloud.
func RunTable1(opts Options) (*Table1Result, error) {
	localBytes := uint64(8 << 20)
	wss := uint64(32 << 20)
	accesses := 20000
	if opts.Quick {
		localBytes, wss, accesses = 2<<20, 8<<20, 3000
	}
	m, err := newMonitorMachine(fluidmem.BackendRAMCloud, localBytes, wss+wss/4,
		func(cfg *core.Config) {
			cfg.AsyncRead = false
			cfg.AsyncWrite = false
			cfg.StealEnabled = false
		}, opts.Seed)
	if err != nil {
		return nil, err
	}
	pcfg := pmbench.DefaultConfig(wss)
	pcfg.Duration = time.Hour
	pcfg.MaxAccesses = accesses
	pcfg.Seed = opts.Seed
	if _, _, err := pmbench.Run(m.Now(), m.VM(), pcfg); err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	res := &Table1Result{}
	for _, op := range []string{
		core.OpUpdatePageCache,
		core.OpInsertPageHash,
		core.OpInsertLRUCache,
		core.OpUffdZeroPage,
		core.OpUffdRemap,
		core.OpUffdCopy,
		core.OpReadPage,
		core.OpWritePage,
	} {
		s := m.Monitor().Profiler().Sample(op)
		if s == nil {
			return nil, fmt.Errorf("table1: code path %s never exercised", op)
		}
		res.Rows = append(res.Rows, Table1Row{
			CodePath: op,
			Avg:      s.Mean(),
			Stdev:    s.Stdev(),
			P99:      s.Percentile(99),
			Samples:  s.Len(),
		})
	}
	return res, nil
}

// Row returns a code path's profile (test hook).
func (r *Table1Result) Row(codePath string) (Table1Row, bool) {
	for _, row := range r.Rows {
		if row.CodePath == codePath {
			return row, true
		}
	}
	return Table1Row{}, false
}

// Render prints the paper's Table I layout.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table I: latencies of key FluidMem code paths (RAMCloud backend, synchronous handling, units: µs)\n")
	fmt.Fprintf(&b, "%-24s %8s %8s %8s %10s\n", "Code path", "Avg", "Stdev", "99th", "samples")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %8.2f %8.2f %8.2f %10d\n",
			row.CodePath, stats.Micros(row.Avg), stats.Micros(row.Stdev), stats.Micros(row.P99), row.Samples)
	}
	return b.String()
}
