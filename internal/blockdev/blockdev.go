// Package blockdev models the block devices that back swap in the paper's
// comparison points (§VI-A): a DRAM/pmem device (/dev/pmem0), an NVMe-over-
// Fabrics target reached over FDR InfiniBand, and a local SSD partition. A
// device services page-granularity reads and writes with a queued service
// time, and optionally interposes a host page cache (the libvirt "writeback"
// mode the paper shows hurts swap-to-DRAM).
package blockdev

import (
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/clock"
)

// PageSize is the I/O granularity (swap I/O is page-sized).
const PageSize = 4096

// Errors returned by devices.
var (
	// ErrOutOfRange reports an access past the device size.
	ErrOutOfRange = errors.New("blockdev: sector out of range")
	// ErrNotWritten reports a read of a never-written page; swap never does
	// this, so surfacing it loudly catches simulation bugs.
	ErrNotWritten = errors.New("blockdev: page never written")
)

// CacheMode selects the hypervisor cache configuration for the virtual disk,
// mirroring libvirt's cache= attribute.
type CacheMode int

// Cache modes.
const (
	// CacheNone is O_DIRECT: requests go straight to the device. The paper
	// uses this for accurate swap comparisons.
	CacheNone CacheMode = iota + 1
	// CacheWriteback buffers writes in the host page cache, adding an extra
	// caching layer that the paper observes makes swap-to-DRAM *slower*.
	CacheWriteback
)

// Kind identifies a device technology.
type Kind string

// Device kinds used in the evaluation.
const (
	KindPmem   Kind = "pmem"   // remote DRAM exposed as /dev/pmem0
	KindNVMeoF Kind = "nvmeof" // NVMe over Fabrics target over FDR IB
	KindSSD    Kind = "ssd"    // local SATA/NVMe flash partition
)

// Params configures one device.
type Params struct {
	Kind Kind
	// SizeBytes is the device capacity (the paper uses 10–20 GB).
	SizeBytes uint64
	// ReadLatency and WriteLatency are per-page service times.
	ReadLatency  clock.LatencyModel
	WriteLatency clock.LatencyModel
	// CacheMode selects the host cache interposition.
	CacheMode CacheMode
	// WritebackOverhead is the extra copy/bookkeeping cost per request when
	// CacheWriteback interposes the host page cache.
	WritebackOverhead time.Duration
}

// PmemParams models remote DRAM via /dev/pmem0: DAX-like, microsecond-scale.
func PmemParams(size uint64) Params {
	return Params{
		Kind:         KindPmem,
		SizeBytes:    size,
		ReadLatency:  clock.LatencyModel{Base: 2800 * time.Nanosecond, Jitter: 300 * time.Nanosecond},
		WriteLatency: clock.LatencyModel{Base: 3000 * time.Nanosecond, Jitter: 300 * time.Nanosecond},
		CacheMode:    CacheNone,
	}
}

// NVMeoFParams models an NVMeoF target over FDR InfiniBand: an RDMA round
// trip plus the remote block stack.
func NVMeoFParams(size uint64) Params {
	return Params{
		Kind:         KindNVMeoF,
		SizeBytes:    size,
		ReadLatency:  clock.LatencyModel{Base: 21 * time.Microsecond, Jitter: 3 * time.Microsecond, TailProb: 0.008, TailExtra: 200 * time.Microsecond},
		WriteLatency: clock.LatencyModel{Base: 19 * time.Microsecond, Jitter: 3 * time.Microsecond, TailProb: 0.008, TailExtra: 200 * time.Microsecond},
		CacheMode:    CacheNone,
	}
}

// SSDParams models a local SATA SSD partition.
func SSDParams(size uint64) Params {
	return Params{
		Kind:         KindSSD,
		SizeBytes:    size,
		ReadLatency:  clock.LatencyModel{Base: 98 * time.Microsecond, Jitter: 16 * time.Microsecond, TailProb: 0.012, TailExtra: 900 * time.Microsecond},
		WriteLatency: clock.LatencyModel{Base: 55 * time.Microsecond, Jitter: 12 * time.Microsecond, TailProb: 0.02, TailExtra: 1500 * time.Microsecond},
		CacheMode:    CacheNone,
	}
}

// Device is one simulated block device storing real page contents.
type Device struct {
	params Params
	pages  map[uint64][]byte
	queue  *clock.Device
	// bgQueue services asynchronous writeback (kswapd swap-out): background
	// writes occupy it without head-of-line-blocking foreground reads,
	// modelling the block layer's sync-read priority.
	bgQueue *clock.Device

	// Host page cache for CacheWriteback mode: dirty pages not yet flushed.
	hostCache map[uint64][]byte

	reads, writes uint64
}

// New builds a device from params.
func New(p Params, seed uint64) (*Device, error) {
	if p.SizeBytes == 0 {
		return nil, fmt.Errorf("blockdev: zero-size %s device", p.Kind)
	}
	if p.CacheMode == 0 {
		p.CacheMode = CacheNone
	}
	if p.CacheMode == CacheWriteback && p.WritebackOverhead == 0 {
		p.WritebackOverhead = 5 * time.Microsecond
	}
	return &Device{
		params:    p,
		pages:     make(map[uint64][]byte),
		queue:     clock.NewDevice(p.ReadLatency, seed),
		bgQueue:   clock.NewDevice(p.WriteLatency, seed+1),
		hostCache: make(map[uint64][]byte),
	}, nil
}

// Kind reports the device technology.
func (d *Device) Kind() Kind { return d.params.Kind }

// Pages reports the device capacity in pages.
func (d *Device) Pages() uint64 { return d.params.SizeBytes / PageSize }

// ReadPage reads the page at index page, returning data and completion time.
func (d *Device) ReadPage(now time.Duration, page uint64) ([]byte, time.Duration, error) {
	if page >= d.Pages() {
		return nil, now, fmt.Errorf("%w: page %d of %d", ErrOutOfRange, page, d.Pages())
	}
	d.reads++
	if d.params.CacheMode == CacheWriteback {
		// Cache hit in the host page cache: no device I/O, just copy cost.
		if data, ok := d.hostCache[page]; ok {
			return append([]byte(nil), data...), now + d.params.WritebackOverhead, nil
		}
		now += d.params.WritebackOverhead
	}
	data, ok := d.pages[page]
	done := d.submit(now, d.params.ReadLatency)
	if !ok {
		return nil, done, fmt.Errorf("%w: page %d", ErrNotWritten, page)
	}
	return append([]byte(nil), data...), done, nil
}

// WritePage writes one page, returning the completion time.
func (d *Device) WritePage(now time.Duration, page uint64, data []byte) (time.Duration, error) {
	if page >= d.Pages() {
		return now, fmt.Errorf("%w: page %d of %d", ErrOutOfRange, page, d.Pages())
	}
	if len(data) != PageSize {
		return now, fmt.Errorf("blockdev: write of %d bytes, want %d", len(data), PageSize)
	}
	d.writes++
	if d.params.CacheMode == CacheWriteback {
		// Buffered write: lands in the host cache quickly, flushes lazily.
		d.hostCache[page] = append([]byte(nil), data...)
		d.pages[page] = append([]byte(nil), data...)
		return now + d.params.WritebackOverhead, nil
	}
	d.pages[page] = append([]byte(nil), data...)
	return d.submit(now, d.params.WriteLatency), nil
}

// WritePageAsync writes one page on the background (writeback) channel: the
// data is durable immediately for subsequent reads, the returned completion
// time reports when the device finishes the transfer, and foreground reads
// do not queue behind it. This is the path kswapd-style asynchronous
// swap-out takes; callers use the completion time for writeback throttling.
func (d *Device) WritePageAsync(now time.Duration, page uint64, data []byte) (time.Duration, error) {
	if page >= d.Pages() {
		return now, fmt.Errorf("%w: page %d of %d", ErrOutOfRange, page, d.Pages())
	}
	if len(data) != PageSize {
		return now, fmt.Errorf("blockdev: write of %d bytes, want %d", len(data), PageSize)
	}
	d.writes++
	d.pages[page] = append([]byte(nil), data...)
	return d.bgQueue.Submit(now), nil
}

// BackgroundLag reports how far the background write channel is running
// behind now (0 when idle) — the writeback-throttling signal.
func (d *Device) BackgroundLag(now time.Duration) time.Duration {
	if lag := d.bgQueue.BusyUntil() - now; lag > 0 {
		return lag
	}
	return 0
}

// Flush drains the host cache (writeback mode), charging device write time
// per dirty page; a no-op for CacheNone.
func (d *Device) Flush(now time.Duration) time.Duration {
	if d.params.CacheMode != CacheWriteback || len(d.hostCache) == 0 {
		return now
	}
	done := now
	for page := range d.hostCache {
		delete(d.hostCache, page)
		done = d.submit(done, d.params.WriteLatency)
	}
	return done
}

// Counters reports total reads and writes serviced.
func (d *Device) Counters() (reads, writes uint64) {
	return d.reads, d.writes
}

func (d *Device) submit(now time.Duration, m clock.LatencyModel) time.Duration {
	old := d.queue.Model
	d.queue.Model = m
	defer func() { d.queue.Model = old }()
	return d.queue.Submit(now)
}
