package blockdev

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func page(tag byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = tag
	}
	return p
}

func mustNew(t *testing.T, p Params, seed uint64) *Device {
	t.Helper()
	d, err := New(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, params := range []Params{PmemParams(1 << 30), NVMeoFParams(1 << 30), SSDParams(1 << 30)} {
		t.Run(string(params.Kind), func(t *testing.T) {
			d := mustNew(t, params, 1)
			if _, err := d.WritePage(0, 42, page(7)); err != nil {
				t.Fatal(err)
			}
			got, done, err := d.ReadPage(time.Millisecond, 42)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, page(7)) {
				t.Fatal("data corrupted")
			}
			if done <= time.Millisecond {
				t.Fatal("read completed instantly")
			}
		})
	}
}

func TestOutOfRange(t *testing.T) {
	d := mustNew(t, PmemParams(1<<20), 1) // 256 pages
	if _, err := d.WritePage(0, 256, page(1)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write err = %v", err)
	}
	if _, _, err := d.ReadPage(0, 9999); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read err = %v", err)
	}
}

func TestReadNeverWritten(t *testing.T) {
	d := mustNew(t, PmemParams(1<<20), 1)
	if _, _, err := d.ReadPage(0, 3); !errors.Is(err, ErrNotWritten) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteWrongSize(t *testing.T) {
	d := mustNew(t, PmemParams(1<<20), 1)
	if _, err := d.WritePage(0, 0, []byte("tiny")); err == nil {
		t.Fatal("want error for short write")
	}
}

func TestZeroSizeRejected(t *testing.T) {
	if _, err := New(Params{Kind: KindSSD}, 1); err == nil {
		t.Fatal("want error for zero-size device")
	}
}

func TestLatencyOrdering(t *testing.T) {
	// pmem < NVMeoF < SSD on average read latency.
	avg := func(p Params) time.Duration {
		d := mustNew(t, p, 7)
		if _, err := d.WritePage(0, 0, page(1)); err != nil {
			t.Fatal(err)
		}
		var total time.Duration
		now := time.Duration(0)
		const n = 500
		for i := 0; i < n; i++ {
			now += 10 * time.Millisecond
			_, done, err := d.ReadPage(now, 0)
			if err != nil {
				t.Fatal(err)
			}
			total += done - now
			now = done
		}
		return total / n
	}
	pmem, nvme, ssd := avg(PmemParams(1<<30)), avg(NVMeoFParams(1<<30)), avg(SSDParams(1<<30))
	if !(pmem < nvme && nvme < ssd) {
		t.Fatalf("latency ordering violated: pmem=%v nvmeof=%v ssd=%v", pmem, nvme, ssd)
	}
}

func TestQueueingUnderBurst(t *testing.T) {
	d := mustNew(t, SSDParams(1<<30), 3)
	if _, err := d.WritePage(0, 0, page(1)); err != nil {
		t.Fatal(err)
	}
	// Burst of reads at the same instant: later ones must queue.
	_, first, err := d.ReadPage(time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := d.ReadPage(time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if second <= first {
		t.Fatalf("no queueing: first=%v second=%v", first, second)
	}
}

func TestWritebackCacheFastWritesSlowerFirstRead(t *testing.T) {
	p := PmemParams(1 << 30)
	p.CacheMode = CacheWriteback
	d := mustNew(t, p, 4)
	done, err := d.WritePage(0, 5, page(9))
	if err != nil {
		t.Fatal(err)
	}
	// Buffered write completes in host-cache time, before device time.
	direct := mustNew(t, PmemParams(1<<30), 4)
	directDone, err := direct.WritePage(0, 5, page(9))
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 || done >= directDone+10*time.Microsecond {
		t.Fatalf("writeback write %v vs direct %v", done, directDone)
	}
	// Cached read skips the device.
	_, readDone, err := d.ReadPage(time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	if lat := readDone - time.Second; lat > 6*time.Microsecond {
		t.Fatalf("cached read took %v", lat)
	}
}

func TestWritebackAddsOverheadOnMiss(t *testing.T) {
	// The paper: "writeback actually made swapping to DRAM slower because of
	// the extra caching layer". A cache-miss read pays overhead + device.
	base := PmemParams(1 << 30)
	wb := base
	wb.CacheMode = CacheWriteback

	direct := mustNew(t, base, 5)
	cached := mustNew(t, wb, 5)
	if _, err := direct.WritePage(0, 1, page(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := cached.WritePage(0, 1, page(1)); err != nil {
		t.Fatal(err)
	}
	cached.Flush(0) // empty the host cache so the read misses

	_, d1, err := direct.ReadPage(time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, d2, err := cached.ReadPage(time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d2-time.Second <= d1-time.Second {
		t.Fatalf("writeback miss (%v) should exceed direct (%v)", d2-time.Second, d1-time.Second)
	}
}

func TestFlushDrainsCache(t *testing.T) {
	p := SSDParams(1 << 30)
	p.CacheMode = CacheWriteback
	d := mustNew(t, p, 6)
	for i := uint64(0); i < 10; i++ {
		if _, err := d.WritePage(0, i, page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	done := d.Flush(0)
	if done <= 0 {
		t.Fatal("flush of dirty pages cost nothing")
	}
	if again := d.Flush(done); again != done {
		t.Fatal("second flush should be free")
	}
}

func TestFlushNoOpForDirect(t *testing.T) {
	d := mustNew(t, PmemParams(1<<30), 7)
	if got := d.Flush(5 * time.Second); got != 5*time.Second {
		t.Fatalf("Flush = %v", got)
	}
}

func TestCounters(t *testing.T) {
	d := mustNew(t, PmemParams(1<<30), 8)
	if _, err := d.WritePage(0, 0, page(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.ReadPage(0, 0); err != nil {
		t.Fatal(err)
	}
	r, w := d.Counters()
	if r != 1 || w != 1 {
		t.Fatalf("counters = %d/%d", r, w)
	}
}
