// Package raft implements a compact Raft consensus core (leader election,
// log replication, commitment) over the simnet fabric. It is the substrate
// for the replicated, globally-consistent virtual-partition table that the
// paper stores in ZooKeeper (§IV).
//
// The implementation covers the Raft safety core: term-monotonic voting with
// the up-to-date log check, AppendEntries consistency checking with conflict
// rollback, and majority commitment restricted to the leader's current term.
// Snapshots and membership change are out of scope; the registry's state fits
// in the log for the lifetime of a simulation.
package raft

import (
	"fmt"
	"sort"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/simnet"
)

// Role is a node's current Raft role.
type Role int

// Raft roles.
const (
	Follower Role = iota + 1
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Entry is one replicated log record.
type Entry struct {
	Term    uint64
	Command any
}

// ApplyFunc is invoked, in log order, once an entry commits.
type ApplyFunc func(index uint64, cmd any)

// noOp is the barrier entry a new leader appends so that entries from prior
// terms become committable (Raft §5.4.2). It is never passed to ApplyFunc.
type noOp struct{}

// Config parametrises a node.
type Config struct {
	// ID is this node's simnet name.
	ID string
	// Peers lists all cluster members, including this node.
	Peers []string
	// ElectionTimeoutMin/Max bound the randomised election timeout.
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// HeartbeatInterval is the leader's AppendEntries cadence.
	HeartbeatInterval time.Duration
	// Seed feeds the node's private RNG (timeout randomisation).
	Seed uint64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ElectionTimeoutMin == 0 {
		out.ElectionTimeoutMin = 150 * time.Millisecond
	}
	if out.ElectionTimeoutMax == 0 {
		out.ElectionTimeoutMax = 300 * time.Millisecond
	}
	if out.HeartbeatInterval == 0 {
		out.HeartbeatInterval = 50 * time.Millisecond
	}
	return out
}

// RPC payloads.
type (
	requestVote struct {
		Term         uint64
		Candidate    string
		LastLogIndex uint64
		LastLogTerm  uint64
	}
	requestVoteReply struct {
		Term    uint64
		Granted bool
	}
	appendEntries struct {
		Term         uint64
		Leader       string
		PrevLogIndex uint64
		PrevLogTerm  uint64
		Entries      []Entry
		LeaderCommit uint64
	}
	appendEntriesReply struct {
		Term       uint64
		Success    bool
		MatchIndex uint64
	}
)

// Node is one Raft participant. All methods must be called from the simnet
// event loop thread (the simulation is single-threaded).
type Node struct {
	cfg   Config
	net   *simnet.Network
	apply ApplyFunc
	rng   *clock.Rand

	role        Role
	currentTerm uint64
	votedFor    string
	log         []Entry // log[0] is a sentinel at index 0
	commitIndex uint64
	lastApplied uint64

	// Leader state.
	nextIndex  map[string]uint64
	matchIndex map[string]uint64

	votes map[string]bool

	// electionEpoch invalidates stale election timers after any reset.
	electionEpoch uint64
	stopped       bool
}

// NewNode creates a node, registers it on the network, and arms its first
// election timer. The node starts as a follower at term 0.
func NewNode(cfg Config, net *simnet.Network, apply ApplyFunc) *Node {
	c := cfg.withDefaults()
	n := &Node{
		cfg:   c,
		net:   net,
		apply: apply,
		rng:   clock.NewRand(c.Seed ^ hashString(c.ID)),
		role:  Follower,
		log:   make([]Entry, 1), // sentinel
	}
	net.Register(c.ID, n.handle)
	n.resetElectionTimer()
	return n
}

// Stop silences the node: it ignores all traffic and timers. Used to model
// crashes in tests.
func (n *Node) Stop() { n.stopped = true }

// Restart revives a stopped node as a follower with its persistent state
// (term, vote, log) intact, mirroring a crash-recover cycle.
func (n *Node) Restart() {
	n.stopped = false
	n.role = Follower
	n.votes = nil
	n.resetElectionTimer()
}

// Role reports the node's current role.
func (n *Node) Role() Role { return n.role }

// Term reports the node's current term.
func (n *Node) Term() uint64 { return n.currentTerm }

// CommitIndex reports the highest committed log index.
func (n *Node) CommitIndex() uint64 { return n.commitIndex }

// LogLen reports the number of real entries in the log.
func (n *Node) LogLen() int { return len(n.log) - 1 }

// Propose appends cmd to the leader's log and begins replication. It returns
// the entry's index and term, or ok=false if this node is not the leader.
func (n *Node) Propose(cmd any) (index, term uint64, ok bool) {
	if n.stopped || n.role != Leader {
		return 0, 0, false
	}
	n.log = append(n.log, Entry{Term: n.currentTerm, Command: cmd})
	idx := uint64(len(n.log) - 1)
	n.matchIndex[n.cfg.ID] = idx
	n.advanceCommit() // a single-node cluster commits immediately
	n.broadcastAppend()
	return idx, n.currentTerm, true
}

func (n *Node) handle(now time.Duration, msg simnet.Message) {
	if n.stopped {
		return
	}
	switch m := msg.Payload.(type) {
	case requestVote:
		n.onRequestVote(msg.From, m)
	case requestVoteReply:
		n.onRequestVoteReply(msg.From, m)
	case appendEntries:
		n.onAppendEntries(msg.From, m)
	case appendEntriesReply:
		n.onAppendEntriesReply(msg.From, m)
	}
}

func (n *Node) onRequestVote(from string, m requestVote) {
	if m.Term > n.currentTerm {
		n.becomeFollower(m.Term)
	}
	granted := false
	if m.Term == n.currentTerm && (n.votedFor == "" || n.votedFor == m.Candidate) && n.logUpToDate(m.LastLogIndex, m.LastLogTerm) {
		granted = true
		n.votedFor = m.Candidate
		n.resetElectionTimer()
	}
	n.net.Send(n.cfg.ID, from, requestVoteReply{Term: n.currentTerm, Granted: granted})
}

// logUpToDate reports whether the candidate's log is at least as up-to-date
// as ours (Raft §5.4.1).
func (n *Node) logUpToDate(lastIndex, lastTerm uint64) bool {
	myLast := uint64(len(n.log) - 1)
	myTerm := n.log[myLast].Term
	if lastTerm != myTerm {
		return lastTerm > myTerm
	}
	return lastIndex >= myLast
}

func (n *Node) onRequestVoteReply(from string, m requestVoteReply) {
	if m.Term > n.currentTerm {
		n.becomeFollower(m.Term)
		return
	}
	if n.role != Candidate || m.Term != n.currentTerm || !m.Granted {
		return
	}
	n.votes[from] = true
	if len(n.votes) >= n.majority() {
		n.becomeLeader()
	}
}

func (n *Node) onAppendEntries(from string, m appendEntries) {
	if m.Term > n.currentTerm {
		n.becomeFollower(m.Term)
	}
	if m.Term < n.currentTerm {
		n.net.Send(n.cfg.ID, from, appendEntriesReply{Term: n.currentTerm})
		return
	}
	// Valid leader for this term.
	if n.role != Follower {
		n.becomeFollower(m.Term)
	}
	n.resetElectionTimer()

	// Consistency check.
	if m.PrevLogIndex >= uint64(len(n.log)) || n.log[m.PrevLogIndex].Term != m.PrevLogTerm {
		n.net.Send(n.cfg.ID, from, appendEntriesReply{Term: n.currentTerm, Success: false})
		return
	}
	// Append, truncating conflicts.
	idx := m.PrevLogIndex
	for i, e := range m.Entries {
		idx = m.PrevLogIndex + uint64(i) + 1
		if idx < uint64(len(n.log)) {
			if n.log[idx].Term != e.Term {
				n.log = n.log[:idx]
				n.log = append(n.log, e)
			}
			continue
		}
		n.log = append(n.log, e)
	}
	match := m.PrevLogIndex + uint64(len(m.Entries))
	if m.LeaderCommit > n.commitIndex {
		n.commitIndex = min64(m.LeaderCommit, uint64(len(n.log)-1))
		n.applyCommitted()
	}
	n.net.Send(n.cfg.ID, from, appendEntriesReply{Term: n.currentTerm, Success: true, MatchIndex: match})
}

func (n *Node) onAppendEntriesReply(from string, m appendEntriesReply) {
	if m.Term > n.currentTerm {
		n.becomeFollower(m.Term)
		return
	}
	if n.role != Leader || m.Term != n.currentTerm {
		return
	}
	if m.Success {
		if m.MatchIndex > n.matchIndex[from] {
			n.matchIndex[from] = m.MatchIndex
			n.nextIndex[from] = m.MatchIndex + 1
			n.advanceCommit()
		}
		return
	}
	// Conflict: back off and retry immediately.
	if n.nextIndex[from] > 1 {
		n.nextIndex[from]--
	}
	n.sendAppendTo(from)
}

// advanceCommit commits the highest index replicated on a majority whose
// entry is from the current term (Raft §5.4.2).
func (n *Node) advanceCommit() {
	matches := make([]uint64, 0, len(n.cfg.Peers))
	for _, p := range n.cfg.Peers {
		matches = append(matches, n.matchIndex[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	candidate := matches[n.majority()-1]
	if candidate > n.commitIndex && n.log[candidate].Term == n.currentTerm {
		n.commitIndex = candidate
		n.applyCommitted()
	}
}

func (n *Node) applyCommitted() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		cmd := n.log[n.lastApplied].Command
		if _, isBarrier := cmd.(noOp); isBarrier {
			continue
		}
		if n.apply != nil {
			n.apply(n.lastApplied, cmd)
		}
	}
}

func (n *Node) becomeFollower(term uint64) {
	if term > n.currentTerm {
		n.currentTerm = term
		n.votedFor = ""
	}
	n.role = Follower
	n.votes = nil
	n.resetElectionTimer()
}

func (n *Node) becomeCandidate() {
	n.role = Candidate
	n.currentTerm++
	n.votedFor = n.cfg.ID
	n.votes = map[string]bool{n.cfg.ID: true}
	n.resetElectionTimer()
	last := uint64(len(n.log) - 1)
	req := requestVote{
		Term:         n.currentTerm,
		Candidate:    n.cfg.ID,
		LastLogIndex: last,
		LastLogTerm:  n.log[last].Term,
	}
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID {
			n.net.Send(n.cfg.ID, p, req)
		}
	}
	if len(n.votes) >= n.majority() { // single-node cluster
		n.becomeLeader()
	}
}

func (n *Node) becomeLeader() {
	if n.role == Leader {
		return
	}
	n.role = Leader
	n.nextIndex = make(map[string]uint64, len(n.cfg.Peers))
	n.matchIndex = make(map[string]uint64, len(n.cfg.Peers))
	last := uint64(len(n.log) - 1)
	for _, p := range n.cfg.Peers {
		n.nextIndex[p] = last + 1
		n.matchIndex[p] = 0
	}
	// Barrier no-op so prior-term entries become committable this term.
	n.log = append(n.log, Entry{Term: n.currentTerm, Command: noOp{}})
	n.matchIndex[n.cfg.ID] = uint64(len(n.log) - 1)
	n.advanceCommit() // single-node clusters commit immediately
	n.broadcastAppend()
	n.scheduleHeartbeat()
}

func (n *Node) scheduleHeartbeat() {
	term := n.currentTerm
	n.net.After(n.cfg.HeartbeatInterval, func(now time.Duration) {
		if n.stopped || n.role != Leader || n.currentTerm != term {
			return
		}
		n.broadcastAppend()
		n.scheduleHeartbeat()
	})
}

func (n *Node) broadcastAppend() {
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID {
			n.sendAppendTo(p)
		}
	}
}

func (n *Node) sendAppendTo(peer string) {
	next := n.nextIndex[peer]
	if next < 1 {
		next = 1
	}
	prev := next - 1
	entries := make([]Entry, len(n.log[next:]))
	copy(entries, n.log[next:])
	n.net.Send(n.cfg.ID, peer, appendEntries{
		Term:         n.currentTerm,
		Leader:       n.cfg.ID,
		PrevLogIndex: prev,
		PrevLogTerm:  n.log[prev].Term,
		Entries:      entries,
		LeaderCommit: n.commitIndex,
	})
}

func (n *Node) resetElectionTimer() {
	n.electionEpoch++
	epoch := n.electionEpoch
	span := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	timeout := n.cfg.ElectionTimeoutMin
	if span > 0 {
		timeout += time.Duration(n.rng.Uint64() % uint64(span))
	}
	n.net.After(timeout, func(now time.Duration) {
		if n.stopped || epoch != n.electionEpoch || n.role == Leader {
			return
		}
		n.becomeCandidate()
	})
}

func (n *Node) majority() int { return len(n.cfg.Peers)/2 + 1 }

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
