package raft

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/simnet"
)

// cluster is a test harness around N nodes on one network.
type cluster struct {
	net     *simnet.Network
	nodes   map[string]*Node
	applied map[string][]any
}

func newCluster(t *testing.T, n int, seed uint64) *cluster {
	t.Helper()
	net := simnet.New(clock.LatencyModel{Base: 5 * time.Millisecond, Jitter: time.Millisecond}, seed)
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("n%d", i)
	}
	c := &cluster{net: net, nodes: make(map[string]*Node, n), applied: make(map[string][]any, n)}
	for _, id := range peers {
		id := id
		c.nodes[id] = NewNode(Config{ID: id, Peers: peers, Seed: seed}, net, func(index uint64, cmd any) {
			c.applied[id] = append(c.applied[id], cmd)
		})
	}
	return c
}

func (c *cluster) leader() *Node {
	var lead *Node
	for _, n := range c.nodes {
		if !n.stopped && n.Role() == Leader {
			if lead == nil || n.Term() > lead.Term() {
				lead = n
			}
		}
	}
	return lead
}

// waitLeader runs the network until exactly one live leader exists at the
// highest term, or the deadline passes.
func (c *cluster) waitLeader(t *testing.T, d time.Duration) *Node {
	t.Helper()
	deadline := c.net.Clock.Now() + d
	for c.net.Clock.Now() < deadline {
		c.net.RunFor(10 * time.Millisecond)
		if l := c.leader(); l != nil {
			return l
		}
	}
	t.Fatalf("no leader elected within %v", d)
	return nil
}

func TestElectsSingleLeader(t *testing.T) {
	c := newCluster(t, 3, 1)
	lead := c.waitLeader(t, 5*time.Second)
	// Run longer; leadership should be stable with no competing leader.
	c.net.RunFor(2 * time.Second)
	leaders := 0
	for _, n := range c.nodes {
		if n.Role() == Leader && n.Term() == lead.Term() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("found %d leaders in term %d", leaders, lead.Term())
	}
}

func TestSingleNodeClusterSelfElects(t *testing.T) {
	c := newCluster(t, 1, 2)
	lead := c.waitLeader(t, 2*time.Second)
	if lead.cfg.ID != "n0" {
		t.Fatalf("leader = %s", lead.cfg.ID)
	}
}

func TestReplicatesAndCommits(t *testing.T) {
	c := newCluster(t, 3, 3)
	lead := c.waitLeader(t, 5*time.Second)
	for i := 0; i < 5; i++ {
		if _, _, ok := lead.Propose(fmt.Sprintf("cmd%d", i)); !ok {
			t.Fatal("propose on leader failed")
		}
	}
	c.net.RunFor(2 * time.Second)
	for id, got := range c.applied {
		if len(got) != 5 {
			t.Fatalf("%s applied %d entries, want 5", id, len(got))
		}
		for i, cmd := range got {
			if cmd != fmt.Sprintf("cmd%d", i) {
				t.Fatalf("%s applied %v at %d", id, cmd, i)
			}
		}
	}
}

func TestProposeOnFollowerRejected(t *testing.T) {
	c := newCluster(t, 3, 4)
	lead := c.waitLeader(t, 5*time.Second)
	for id, n := range c.nodes {
		if id != lead.cfg.ID {
			if _, _, ok := n.Propose("x"); ok {
				t.Fatalf("follower %s accepted a proposal", id)
			}
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	c := newCluster(t, 3, 5)
	lead := c.waitLeader(t, 5*time.Second)
	lead.Propose("before-crash")
	c.net.RunFor(time.Second)

	lead.Stop()
	c.net.Partition(lead.cfg.ID)
	newLead := c.waitLeader(t, 10*time.Second)
	if newLead.cfg.ID == lead.cfg.ID {
		t.Fatal("crashed node still considered leader")
	}
	if newLead.Term() <= lead.Term() {
		t.Fatalf("new leader term %d not greater than old %d", newLead.Term(), lead.Term())
	}
	newLead.Propose("after-crash")
	c.net.RunFor(2 * time.Second)
	for id, n := range c.nodes {
		if n.stopped {
			continue
		}
		got := c.applied[id]
		if len(got) != 2 || got[0] != "before-crash" || got[1] != "after-crash" {
			t.Fatalf("%s applied %v", id, got)
		}
	}
}

func TestPartitionedLeaderStepsDown(t *testing.T) {
	c := newCluster(t, 5, 6)
	lead := c.waitLeader(t, 5*time.Second)
	c.net.Partition(lead.cfg.ID)
	// Majority side elects a new leader.
	var newLead *Node
	deadline := c.net.Clock.Now() + 10*time.Second
	for c.net.Clock.Now() < deadline {
		c.net.RunFor(10 * time.Millisecond)
		if l := c.leader(); l != nil && l.cfg.ID != lead.cfg.ID {
			newLead = l
			break
		}
	}
	if newLead == nil {
		t.Fatal("majority never elected a replacement leader")
	}
	// Heal: old leader must step down on seeing the higher term.
	c.net.Heal(lead.cfg.ID)
	c.net.RunFor(2 * time.Second)
	if lead.Role() == Leader && lead.Term() < newLead.Term() {
		t.Fatal("stale leader did not step down after heal")
	}
}

func TestCommitRequiresMajority(t *testing.T) {
	c := newCluster(t, 3, 7)
	lead := c.waitLeader(t, 5*time.Second)
	// Isolate both followers: nothing can commit.
	for id := range c.nodes {
		if id != lead.cfg.ID {
			c.net.Partition(id)
		}
	}
	lead.Propose("lonely")
	c.net.RunFor(2 * time.Second)
	if got := len(c.applied[lead.cfg.ID]); got != 0 {
		t.Fatalf("entry committed without majority (applied %d)", got)
	}
	// Heal one follower: majority restored, entry commits.
	for id := range c.nodes {
		if id != lead.cfg.ID {
			c.net.Heal(id)
			break
		}
	}
	c.net.RunFor(3 * time.Second)
	if got := len(c.applied[lead.cfg.ID]); got != 1 {
		t.Fatalf("applied %d entries after heal, want 1", got)
	}
}

func TestRestartRejoinsAndCatchesUp(t *testing.T) {
	c := newCluster(t, 3, 8)
	lead := c.waitLeader(t, 5*time.Second)

	var crashed *Node
	for id, n := range c.nodes {
		if id != lead.cfg.ID {
			crashed = n
			break
		}
	}
	crashed.Stop()
	c.net.Partition(crashed.cfg.ID)

	for i := 0; i < 3; i++ {
		lead.Propose(i)
	}
	c.net.RunFor(2 * time.Second)

	crashed.Restart()
	c.net.Heal(crashed.cfg.ID)
	c.net.RunFor(3 * time.Second)

	if got := len(c.applied[crashed.cfg.ID]); got != 3 {
		t.Fatalf("restarted node applied %d entries, want 3", got)
	}
}

func TestMessageLossTolerated(t *testing.T) {
	c := newCluster(t, 3, 9)
	c.net.SetLossRate(0.2)
	lead := c.waitLeader(t, 30*time.Second)
	for i := 0; i < 3; i++ {
		lead.Propose(i)
		c.net.RunFor(time.Second)
		// Leadership can churn under loss; re-acquire the leader.
		if l := c.leader(); l != nil {
			lead = l
		}
	}
	c.net.RunFor(10 * time.Second)
	// At least the current leader must have applied everything it committed,
	// and all live nodes must agree on a prefix.
	ref := c.applied[c.waitLeader(t, 30*time.Second).cfg.ID]
	for id, got := range c.applied {
		limit := len(got)
		if len(ref) < limit {
			limit = len(ref)
		}
		for i := 0; i < limit; i++ {
			if got[i] != ref[i] {
				t.Fatalf("%s diverges from leader at %d: %v vs %v", id, i, got[i], ref[i])
			}
		}
	}
}

func TestMessageDuplicationSafe(t *testing.T) {
	// At-least-once delivery: 1% of messages arrive twice, with independent
	// latency so the copy can also arrive out of order. Raft RPCs must be
	// idempotent — stale AppendEntries and duplicate votes must not produce
	// divergent logs or double-applied entries.
	c := newCluster(t, 3, 13)
	c.net.SetDuplicateRate(0.01)
	lead := c.waitLeader(t, 30*time.Second)
	for i := 0; i < 10; i++ {
		lead.Propose(i)
		c.net.RunFor(time.Second)
		if l := c.leader(); l != nil {
			lead = l
		}
	}
	c.net.RunFor(10 * time.Second)
	if c.net.Duplicated() == 0 {
		t.Fatal("duplication injection never fired; test is vacuous")
	}
	ref := c.applied[c.waitLeader(t, 30*time.Second).cfg.ID]
	for id, got := range c.applied {
		// No node may apply more entries than were proposed: a duplicate
		// AppendEntries must never re-apply.
		if len(got) > 10 {
			t.Fatalf("%s applied %d entries, only 10 proposed", id, len(got))
		}
		limit := len(got)
		if len(ref) < limit {
			limit = len(ref)
		}
		for i := 0; i < limit; i++ {
			if got[i] != ref[i] {
				t.Fatalf("%s diverges from leader at %d: %v vs %v", id, i, got[i], ref[i])
			}
		}
	}
}

func TestElectsThroughPartialPartition(t *testing.T) {
	// Pairwise cut between the leader and one follower: neither hears the
	// other, but the third node talks to both sides. Without PreVote this
	// churns leadership between the two cut nodes, yet the shared node sits
	// in every majority, so the cluster must keep electing functioning
	// leaders and committing entries through the partial partition.
	c := newCluster(t, 3, 12)
	lead := c.waitLeader(t, 5*time.Second)
	ids := []string{"n0", "n1", "n2"}
	var cut, shared string
	for _, id := range ids {
		if id == lead.cfg.ID {
			continue
		}
		if cut == "" {
			cut = id
		} else {
			shared = id
		}
	}
	c.net.PartitionPair(lead.cfg.ID, cut)

	committed := func() int {
		count := 0
		for _, cmd := range c.applied[shared] {
			if s, ok := cmd.(string); ok && strings.HasPrefix(s, "pp") {
				count++
			}
		}
		return count
	}
	next := 0
	deadline := c.net.Clock.Now() + 120*time.Second
	for committed() < 3 && c.net.Clock.Now() < deadline {
		if l := c.leader(); l != nil {
			if _, _, ok := l.Propose(fmt.Sprintf("pp%d", next)); ok {
				next++
			}
		}
		c.net.RunFor(300 * time.Millisecond)
	}
	if got := committed(); got < 3 {
		t.Fatalf("only %d entries committed through partial partition", got)
	}
	// Both sides of the cut still agree with the shared node on the prefix
	// they applied — no divergent logs.
	ref := c.applied[shared]
	for _, id := range ids {
		got := c.applied[id]
		limit := len(got)
		if len(ref) < limit {
			limit = len(ref)
		}
		for i := 0; i < limit; i++ {
			if got[i] != ref[i] {
				t.Fatalf("%s diverges from %s at %d: %v vs %v", id, shared, i, got[i], ref[i])
			}
		}
	}
}

func TestTermsMonotonic(t *testing.T) {
	c := newCluster(t, 3, 10)
	last := make(map[string]uint64)
	for i := 0; i < 50; i++ {
		c.net.RunFor(100 * time.Millisecond)
		for id, n := range c.nodes {
			if n.Term() < last[id] {
				t.Fatalf("%s term went backwards: %d -> %d", id, last[id], n.Term())
			}
			last[id] = n.Term()
		}
	}
}

func TestRoleString(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Fatal("role strings wrong")
	}
	if Role(42).String() != "role(42)" {
		t.Fatal("unknown role string wrong")
	}
}

func TestAppliedInOrderUnderChurn(t *testing.T) {
	c := newCluster(t, 5, 11)
	var proposed int
	for round := 0; round < 5; round++ {
		lead := c.waitLeader(t, 30*time.Second)
		for i := 0; i < 4; i++ {
			if _, _, ok := lead.Propose(proposed); ok {
				proposed++
			}
			c.net.RunFor(200 * time.Millisecond)
		}
		// Crash the leader every other round.
		if round%2 == 0 {
			lead.Stop()
			c.net.Partition(lead.cfg.ID)
		}
	}
	c.net.RunFor(5 * time.Second)
	// Every live node's applied sequence must be a monotone sequence of the
	// proposed integers (gaps impossible: log order).
	for id, n := range c.nodes {
		if n.stopped {
			continue
		}
		got := c.applied[id]
		for i := 1; i < len(got); i++ {
			if got[i].(int) <= got[i-1].(int) {
				t.Fatalf("%s applied out of order: %v", id, got)
			}
		}
	}
}
