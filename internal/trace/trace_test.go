package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// A nil *Tracer must be fully inert: every method callable, zero effect.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(EvFault, 0, 0x1000, 0, time.Microsecond, "read")
	tr.Observe("HASH_LOOKUP", 0, time.Nanosecond)
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer Events() = %v, want nil", got)
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer Snapshot() = %v, want nil", got)
	}
	if got := tr.LogicalDigest(); got != 0 {
		t.Fatalf("nil tracer LogicalDigest() = %d, want 0", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer WriteChromeTrace: %v", err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("nil tracer chrome trace = %q", buf.String())
	}
}

func TestEmitFeedsEventsAndHistograms(t *testing.T) {
	tr := New(true)
	tr.Emit(EvFault, 1, 0x2000, 10*time.Microsecond, 5*time.Microsecond, "read")
	tr.Emit(EvFault, 2, 0x3000, 20*time.Microsecond, 7*time.Microsecond, "tier")
	tr.Observe("FAULT.read", 1, 5*time.Microsecond)

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Page != 0x2000 || evs[0].Arg != "read" || evs[0].Worker != 1 {
		t.Fatalf("event 0 = %+v", evs[0])
	}

	rows := tr.Snapshot()
	var merged *PhaseStats
	for i := range rows {
		if rows[i].Phase == EvFault && rows[i].Worker == MergedWorker {
			merged = &rows[i]
		}
	}
	if merged == nil {
		t.Fatalf("no merged FAULT row in %+v", rows)
	}
	if merged.Count != 2 {
		t.Fatalf("merged FAULT count = %d, want 2", merged.Count)
	}
	if merged.Max != 7*time.Microsecond {
		t.Fatalf("merged FAULT max = %v, want 7µs", merged.Max)
	}
	if merged.P50 <= 0 || merged.P99 > merged.Max {
		t.Fatalf("implausible percentiles: %+v", merged)
	}
}

// keepEvents=false must still feed histograms but retain no event log.
func TestHistogramOnlyMode(t *testing.T) {
	tr := New(false)
	tr.Emit(EvEvict, 0, 0x1000, 0, time.Microsecond, "remap")
	if got := tr.Events(); len(got) != 0 {
		t.Fatalf("histogram-only tracer retained %d events", len(got))
	}
	rows := tr.Snapshot()
	if len(rows) == 0 || rows[0].Count != 1 {
		t.Fatalf("histogram-only tracer lost the observation: %+v", rows)
	}
}

// Snapshot must be deterministically ordered: phase ascending, merged row
// before per-worker rows.
func TestSnapshotOrdering(t *testing.T) {
	tr := New(false)
	tr.Observe("B_PHASE", 3, time.Microsecond)
	tr.Observe("A_PHASE", 1, time.Microsecond)
	tr.Observe("A_PHASE", 0, 2*time.Microsecond)
	rows := tr.Snapshot()
	want := []struct {
		phase  string
		worker int
	}{
		{"A_PHASE", MergedWorker}, {"A_PHASE", 0}, {"A_PHASE", 1},
		{"B_PHASE", MergedWorker}, {"B_PHASE", 3},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d: %+v", len(rows), len(want), rows)
	}
	for i, w := range want {
		if rows[i].Phase != w.phase || rows[i].Worker != w.worker {
			t.Fatalf("row %d = (%s, %d), want (%s, %d)", i, rows[i].Phase, rows[i].Worker, w.phase, w.worker)
		}
	}
}

// The digest must ignore timestamps and worker IDs (timing artifacts) but
// see names, args, and pages (logical content), and skip timing-dependent
// event kinds entirely.
func TestLogicalDigestSemantics(t *testing.T) {
	base := func() *Tracer {
		tr := New(true)
		tr.Emit(EvFault, 0, 0x1000, 0, time.Microsecond, "read")
		tr.Emit(EvEvict, 1, 0x2000, time.Microsecond, 2*time.Microsecond, "remap")
		return tr
	}

	a := base()
	// Same logical events at different times, on different workers.
	b := New(true)
	b.Emit(EvFault, 3, 0x1000, 9*time.Microsecond, 44*time.Microsecond, "read")
	b.Emit(EvEvict, 7, 0x2000, 100*time.Microsecond, time.Microsecond, "remap")
	if a.LogicalDigest() != b.LogicalDigest() {
		t.Fatal("digest must be invariant to timestamps and worker IDs")
	}

	// A timing-dependent event must not perturb the digest.
	c := base()
	c.Emit(EvWait, 0, 0x3000, 0, time.Microsecond, "")
	if a.LogicalDigest() != c.LogicalDigest() {
		t.Fatal("digest must skip timing-dependent events")
	}

	// A different page is a different logical sequence.
	d := New(true)
	d.Emit(EvFault, 0, 0x1001, 0, time.Microsecond, "read")
	d.Emit(EvEvict, 1, 0x2000, time.Microsecond, 2*time.Microsecond, "remap")
	if a.LogicalDigest() == d.LogicalDigest() {
		t.Fatal("digest must see page addresses")
	}

	// A different arg (resolution path) is a different logical sequence.
	e := New(true)
	e.Emit(EvFault, 0, 0x1000, 0, time.Microsecond, "tier")
	e.Emit(EvEvict, 1, 0x2000, time.Microsecond, 2*time.Microsecond, "remap")
	if a.LogicalDigest() == e.LogicalDigest() {
		t.Fatal("digest must see event args")
	}
}

func TestTimingDependentTaxonomy(t *testing.T) {
	for _, name := range []string{EvWait, EvRetry, EvFailover, EvDegraded} {
		if !TimingDependent(name) {
			t.Errorf("%s should be timing-dependent", name)
		}
	}
	for _, name := range []string{EvFault, EvEvict, EvFlush, EvStoreMultiPut, EvUffdRemap, EvPrefetch} {
		if TimingDependent(name) {
			t.Errorf("%s should not be timing-dependent", name)
		}
	}
}

// Byte determinism: the same event sequence must serialize identically, and
// the output must carry nanosecond precision in the microsecond fraction.
func TestChromeTraceBytes(t *testing.T) {
	build := func() *Tracer {
		tr := New(true)
		tr.Emit(EvFault, 2, 0x7c0000001000, 1234*time.Nanosecond, 5678*time.Nanosecond, "read")
		tr.Emit(EvFlush, 0, 0, 10*time.Microsecond, 3*time.Microsecond, "8")
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same events produced different trace bytes")
	}
	out := a.String()
	for _, frag := range []string{
		`"name":"FAULT"`, `"ph":"X"`, `"ts":1.234`, `"dur":5.678`,
		`"tid":2`, `"page":"0x7c0000001000"`, `"arg":"read"`,
		`"name":"WB_FLUSH"`, `"displayTimeUnit":"ns"`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace missing %s in:\n%s", frag, out)
		}
	}
}

// PhaseHistogram must return the merged-across-workers raw histogram: the
// same percentiles as the Snapshot's MergedWorker row, invariant to how the
// observations were spread over worker cells, and the zero histogram for
// nil tracers and unknown phases.
func TestPhaseHistogramMergesWorkers(t *testing.T) {
	var nilTracer *Tracer
	if h := nilTracer.PhaseHistogram(EvFault); h.Count() != 0 {
		t.Fatal("nil tracer returned a non-empty histogram")
	}

	spread := New(false)
	single := New(false)
	ds := []time.Duration{time.Microsecond, 5 * time.Microsecond, 9 * time.Microsecond, 20 * time.Microsecond}
	for i, d := range ds {
		spread.Observe(EvFault, i%3, d)
		single.Observe(EvFault, 0, d)
	}
	spread.Observe("OTHER", 0, time.Second) // must not bleed into FAULT

	hs, h1 := spread.PhaseHistogram(EvFault), single.PhaseHistogram(EvFault)
	if hs != h1 {
		t.Fatal("merged histogram depends on worker partitioning")
	}
	for _, row := range spread.Snapshot() {
		if row.Phase == EvFault && row.Worker == MergedWorker {
			if row.P99 != hs.Percentile(99) || row.Count != hs.Count() {
				t.Fatalf("PhaseHistogram disagrees with merged Snapshot row: %v/%d vs %v/%d",
					hs.Percentile(99), hs.Count(), row.P99, row.Count)
			}
		}
	}
	if h := spread.PhaseHistogram("NO_SUCH_PHASE"); h.Count() != 0 {
		t.Fatal("unknown phase returned observations")
	}
}
