// Package trace is the deterministic observability layer for the fault
// pipeline: virtual-clock-timestamped events plus fixed-bucket latency
// histograms per phase and per worker.
//
// Two properties are load-bearing and must survive any change here:
//
//  1. Tracing is pure observation. A Tracer draws no randomness and charges
//     no virtual time, so a run's simulated results are bit-for-bit
//     identical whether tracing is on, off, or absent (nil *Tracer is a
//     valid, inert tracer — every method is nil-safe).
//  2. Event order is code-execution order. The simulator is single-threaded
//     and worker parallelism only changes *computed times*, never the
//     sequence of logical operations, so the same seed yields the same
//     logical event sequence at any worker count. The only events whose
//     existence depends on timing (in-flight waits, resilience retries /
//     failovers / degraded stalls) are declared TimingDependent and skipped
//     by LogicalDigest, mirroring the shard oracle's InFlightWaits carve-out.
package trace

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"time"

	"fluidmem/internal/stats"
)

// Event names. The UFFD names deliberately match the Table-I profiler ops so
// a trace lines up with the paper's per-syscall cost rows; the rest name the
// pipeline phase that produced them. Hosted here (not in core) because
// internal/uffd and internal/kvstore emit them too and cannot import core.
const (
	EvFault         = "FAULT"         // arg = resolution path (first_touch, zero_refill, tier, steal, read, batched_read)
	EvUffdZeroPage  = "UFFD_ZEROPAGE" //
	EvUffdCopy      = "UFFD_COPY"     //
	EvUffdRemap     = "UFFD_REMAP"    // arg = "interleaved" when eviction overlaps resolution
	EvUffdWP        = "UFFD_WRITEPROTECT"
	EvEvict         = "EVICT"          // arg = "remap" | "copy" | "drop" | "elide" | "tier"
	EvZeroElide     = "WB_ZERO_ELIDE"  //
	EvCleanDrop     = "WB_CLEAN_DROP"  //
	EvFlush         = "WB_FLUSH"       // arg = batch size
	EvSteal         = "WB_STEAL"       //
	EvWait          = "WB_WAIT"        // timing-dependent: exists only when a fault catches an in-flight write
	EvStoreGet      = "STORE_GET"      //
	EvStoreMultiGet = "STORE_MULTIGET" // arg = batch size
	EvStorePut      = "STORE_PUT"      //
	EvStoreMultiPut = "STORE_MULTIPUT" // arg = batch size
	EvStoreDelete   = "STORE_DELETE"   //
	EvPrefetch      = "PREFETCH"       //
	EvRetry         = "RES_RETRY"      // timing-dependent: resilience backoff
	EvFailover      = "RES_FAILOVER"   // timing-dependent: replica rotation
	EvDegraded      = "RES_DEGRADED"   // timing-dependent: degraded-mode stall
	EvResize        = "RESIZE"         // addr field = new LRU capacity in pages
	EvArbiter       = "ARBITER"        // arg = epoch decision summary (moves=N pages=P)
)

// TimingDependent reports whether events named name may exist in one
// worker-count configuration and not another, because their trigger is a
// virtual-time race (a fault landing during an in-flight write, a health
// deadline expiring). These are excluded from LogicalDigest; everything
// else must be sequence-identical across worker counts.
func TimingDependent(name string) bool {
	switch name {
	case EvWait, EvRetry, EvFailover, EvDegraded:
		return true
	}
	return false
}

// Event is one traced operation on the virtual clock.
type Event struct {
	Name   string        // event taxonomy constant (EvFault, EvFlush, ...)
	Arg    string        // name-specific detail (resolution path, batch size)
	Page   uint64        // guest page address, 0 when not page-scoped
	Worker int           // owning fault-pipeline worker (page-address shard)
	Start  time.Duration // virtual start time
	Dur    time.Duration // virtual duration (0 for instantaneous marks)
}

// PhaseStats is one histogram row of a Snapshot: latency percentiles for a
// phase, either merged across workers (Worker == MergedWorker) or for one
// worker cell.
type PhaseStats struct {
	Phase  string
	Worker int // MergedWorker for the all-workers row
	Count  uint64
	P50    time.Duration
	P90    time.Duration
	P99    time.Duration
	Max    time.Duration
}

// MergedWorker is the Worker value of a Snapshot row aggregated across all
// workers.
const MergedWorker = -1

type histKey struct {
	phase  string
	worker int
}

// Tracer accumulates events and per-(phase, worker) histograms. It is not
// safe for concurrent use, which matches the single-threaded simulator. The
// nil Tracer is valid and records nothing, so instrumented code never needs
// an enabled check.
type Tracer struct {
	keepEvents bool
	events     []Event
	hists      map[histKey]*stats.Histogram
}

// New returns a Tracer. With keepEvents false only histograms accumulate —
// the cheap mode for long benches that want percentiles but not a full
// event log.
func New(keepEvents bool) *Tracer {
	return &Tracer{keepEvents: keepEvents, hists: map[histKey]*stats.Histogram{}}
}

// Emit records one event span and feeds its duration into the (name,
// worker) histogram.
func (t *Tracer) Emit(name string, worker int, page uint64, start, dur time.Duration, arg string) {
	if t == nil {
		return
	}
	if t.keepEvents {
		t.events = append(t.events, Event{Name: name, Arg: arg, Page: page, Worker: worker, Start: start, Dur: dur})
	}
	t.observe(name, worker, dur)
}

// Observe feeds a duration into the (phase, worker) histogram without
// recording an event — for sub-phase costs (hash lookup, LRU update, zero
// scan) where an event per occurrence would swamp the log.
func (t *Tracer) Observe(phase string, worker int, d time.Duration) {
	if t == nil {
		return
	}
	t.observe(phase, worker, d)
}

func (t *Tracer) observe(phase string, worker int, d time.Duration) {
	k := histKey{phase, worker}
	h := t.hists[k]
	if h == nil {
		h = &stats.Histogram{}
		t.hists[k] = h
	}
	h.Add(d)
}

// Events returns the recorded event log (nil when keepEvents is off).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Snapshot renders every histogram as percentile rows, sorted by phase name
// and then worker, with each phase's merged-across-workers row first.
func (t *Tracer) Snapshot() []PhaseStats {
	if t == nil {
		return nil
	}
	// Merge per-worker cells into a per-phase aggregate.
	merged := map[string]*stats.Histogram{}
	for k, h := range t.hists {
		m := merged[k.phase]
		if m == nil {
			m = &stats.Histogram{}
			merged[k.phase] = m
		}
		m.Merge(h)
	}
	rows := make([]PhaseStats, 0, len(t.hists)+len(merged))
	for phase, h := range merged {
		rows = append(rows, phaseRow(phase, MergedWorker, h))
	}
	for k, h := range t.hists {
		rows = append(rows, phaseRow(k.phase, k.worker, h))
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Phase != rows[j].Phase {
			return rows[i].Phase < rows[j].Phase
		}
		return rows[i].Worker < rows[j].Worker
	})
	return rows
}

func phaseRow(phase string, worker int, h *stats.Histogram) PhaseStats {
	return PhaseStats{
		Phase:  phase,
		Worker: worker,
		Count:  h.Count(),
		P50:    h.Percentile(50),
		P90:    h.Percentile(90),
		P99:    h.Percentile(99),
		Max:    h.Max(),
	}
}

// PhaseHistogram returns a copy of the named phase's latency histogram
// merged across all workers — the raw-bucket counterpart of the Snapshot
// row whose Worker is MergedWorker. Callers that need epoch *windows* (the
// host's per-tenant SLO accounting) snapshot this cumulative histogram at
// boundary crossings and difference consecutive snapshots with
// stats.Histogram.Sub. The zero Histogram is returned for a nil tracer or
// an unobserved phase. Merging is bucket-wise addition, so the result is a
// pure function of the multiset of observations — how they were
// partitioned across worker cells cannot change it.
func (t *Tracer) PhaseHistogram(phase string) stats.Histogram {
	var merged stats.Histogram
	if t == nil {
		return merged
	}
	for k, h := range t.hists {
		if k.phase == phase {
			merged.Merge(h)
		}
	}
	return merged
}

// LogicalDigest hashes the sequence of non-timing-dependent events —
// (name, arg, page) only, no timestamps, no worker IDs — which is the
// quantity the shard oracle asserts identical across worker counts.
func (t *Tracer) LogicalDigest() uint64 {
	if t == nil {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	for i := range t.events {
		ev := &t.events[i]
		if TimingDependent(ev.Name) {
			continue
		}
		io.WriteString(h, ev.Name)
		h.Write([]byte{0})
		io.WriteString(h, ev.Arg)
		h.Write([]byte{0})
		for b := 0; b < 8; b++ {
			buf[b] = byte(ev.Page >> (8 * b))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// WriteChromeTrace emits the event log in Chrome trace event format
// (chrome://tracing, Perfetto): complete ("X") events with microsecond
// timestamps carrying nanosecond precision in the fraction. The output is
// hand-formatted, not encoding/json, so it is byte-deterministic: same
// events in, same bytes out.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ns"}`+"\n")
		return err
	}
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	for i := range t.events {
		ev := &t.events[i]
		sep := ","
		if i == 0 {
			sep = ""
		}
		_, err := fmt.Fprintf(w,
			"%s\n{\"name\":%q,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,\"args\":{\"page\":\"0x%x\",\"arg\":%q}}",
			sep, ev.Name, micros(ev.Start), micros(ev.Dur), ev.Worker, ev.Page, ev.Arg)
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n],\"displayTimeUnit\":\"ns\"}\n")
	return err
}

// micros formats a duration as decimal microseconds with the nanosecond
// remainder in three fixed fraction digits ("12.345"), avoiding float
// formatting so output bytes are deterministic.
func micros(d time.Duration) string {
	ns := d.Nanoseconds()
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}
