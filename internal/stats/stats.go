// Package stats collects and summarises virtual-time measurements: latency
// histograms, CDFs, percentiles, and the harmonic-mean TEPS aggregation that
// Graph500 reporting requires.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample is an ordered collection of duration observations.
type Sample struct {
	values []time.Duration
	sorted bool
}

// NewSample returns an empty sample with capacity hint n.
func NewSample(n int) *Sample {
	return &Sample{values: make([]time.Duration, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(d time.Duration) {
	s.values = append(s.values, d)
	s.sorted = false
}

// Len reports the number of observations.
func (s *Sample) Len() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += float64(v)
	}
	return time.Duration(sum / float64(len(s.values)))
}

// Stdev returns the population standard deviation, or 0 for fewer than two
// observations.
func (s *Sample) Stdev() time.Duration {
	if len(s.values) < 2 {
		return 0
	}
	mean := float64(s.Mean())
	var sq float64
	for _, v := range s.values {
		d := float64(v) - mean
		sq += d * d
	}
	return time.Duration(math.Sqrt(sq / float64(len(s.values))))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() time.Duration {
	s.sort()
	if len(s.values) == 0 {
		return 0
	}
	return s.values[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() time.Duration {
	s.sort()
	if len(s.values) == 0 {
		return 0
	}
	return s.values[len(s.values)-1]
}

// Percentile returns the p-th percentile (p in [0, 100]) using
// nearest-rank interpolation. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) time.Duration {
	s.sort()
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo] + time.Duration(frac*float64(s.values[hi]-s.values[lo]))
}

// CDFPoint is one (latency, cumulative fraction) coordinate.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// CDF returns up to points evenly spaced coordinates of the empirical CDF,
// suitable for rendering Figure 3-style plots.
func (s *Sample) CDF(points int) []CDFPoint {
	s.sort()
	n := len(s.values)
	if n == 0 || points <= 0 {
		return nil
	}
	if points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := (i + 1) * n / points
		if idx > n {
			idx = n
		}
		out = append(out, CDFPoint{
			Latency:  s.values[idx-1],
			Fraction: float64(idx) / float64(n),
		})
	}
	return out
}

// FractionBelow returns the fraction of observations strictly below d.
func (s *Sample) FractionBelow(d time.Duration) float64 {
	s.sort()
	if len(s.values) == 0 {
		return 0
	}
	idx := sort.Search(len(s.values), func(i int) bool { return s.values[i] >= d })
	return float64(idx) / float64(len(s.values))
}

// Summary formats mean/stdev/p99 in microseconds, the unit the paper reports.
func (s *Sample) Summary() string {
	return fmt.Sprintf("avg=%.2fµs stdev=%.2fµs p99=%.2fµs n=%d",
		Micros(s.Mean()), Micros(s.Stdev()), Micros(s.Percentile(99)), s.Len())
}

func (s *Sample) sort() {
	if s.sorted {
		return
	}
	sort.Slice(s.values, func(i, j int) bool { return s.values[i] < s.values[j] })
	s.sorted = true
}

// Micros converts a duration to float microseconds.
func Micros(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}

// HarmonicMean returns the harmonic mean of rates (e.g. TEPS over 64 BFS
// roots, as Graph500 specifies). Zero or negative entries are rejected with
// an error since the harmonic mean is undefined for them.
func HarmonicMean(rates []float64) (float64, error) {
	if len(rates) == 0 {
		return 0, fmt.Errorf("stats: harmonic mean of empty slice")
	}
	var invSum float64
	for i, r := range rates {
		if r <= 0 {
			return 0, fmt.Errorf("stats: harmonic mean needs positive rates, got %v at index %d", r, i)
		}
		invSum += 1 / r
	}
	return float64(len(rates)) / invSum, nil
}

// TimePoint is one (virtual time, value) observation in a time series.
type TimePoint struct {
	At    time.Duration
	Value time.Duration
}

// TimeSeries accumulates timestamped latency observations (Figure 5's read
// latency time courses).
type TimeSeries struct {
	points []TimePoint
}

// Add records value at virtual time at.
func (ts *TimeSeries) Add(at, value time.Duration) {
	ts.points = append(ts.points, TimePoint{At: at, Value: value})
}

// Len reports the number of observations.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Mean returns the arithmetic mean of values, or 0 if empty.
func (ts *TimeSeries) Mean() time.Duration {
	if len(ts.points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range ts.points {
		sum += float64(p.Value)
	}
	return time.Duration(sum / float64(len(ts.points)))
}

// Buckets averages the series into n equal spans of virtual time, returning
// one point per non-empty bucket. This is how the harness downsamples the
// Figure 5 time courses for terminal rendering.
func (ts *TimeSeries) Buckets(n int) []TimePoint {
	if len(ts.points) == 0 || n <= 0 {
		return nil
	}
	start, end := ts.points[0].At, ts.points[0].At
	for _, p := range ts.points {
		if p.At < start {
			start = p.At
		}
		if p.At > end {
			end = p.At
		}
	}
	span := end - start
	if span <= 0 {
		return []TimePoint{{At: start, Value: ts.Mean()}}
	}
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, p := range ts.points {
		idx := int(int64(p.At-start) * int64(n) / int64(span+1))
		if idx >= n {
			idx = n - 1
		}
		sums[idx] += float64(p.Value)
		counts[idx]++
	}
	out := make([]TimePoint, 0, n)
	for i := 0; i < n; i++ {
		if counts[i] == 0 {
			continue
		}
		mid := start + time.Duration((float64(i)+0.5)*float64(span)/float64(n))
		out = append(out, TimePoint{At: mid, Value: time.Duration(sums[i] / float64(counts[i]))})
	}
	return out
}

// Counters is an ordered set of named event counters — the export surface
// for subsystem counts (chaos injections, resilience retries, failovers)
// that the operator console and experiment harness render uniformly.
type Counters struct {
	names  []string
	values map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{values: make(map[string]uint64)}
}

// Set stores value under name, preserving first-insertion order.
func (c *Counters) Set(name string, value uint64) {
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] = value
}

// Add increments name by delta, creating it if absent.
func (c *Counters) Add(name string, delta uint64) {
	c.Set(name, c.values[name]+delta)
}

// Get returns the value under name (0 if absent).
func (c *Counters) Get(name string) uint64 { return c.values[name] }

// Names returns the counter names in insertion order.
func (c *Counters) Names() []string { return append([]string(nil), c.names...) }

// Merge folds other's counters into c, summing values under the same name.
func (c *Counters) Merge(other *Counters) {
	if other == nil {
		return
	}
	for _, name := range other.names {
		c.Add(name, other.values[name])
	}
}

// Equal reports whether both sets hold identical names and values — the
// comparison the chaos repeatability tests use.
func (c *Counters) Equal(other *Counters) bool {
	if other == nil || len(c.names) != len(other.names) {
		return false
	}
	for _, name := range c.names {
		ov, ok := other.values[name]
		if !ok || ov != c.values[name] {
			return false
		}
	}
	return true
}

// Render formats the counters one per line for terminal output.
func (c *Counters) Render() string {
	var b strings.Builder
	for _, name := range c.names {
		fmt.Fprintf(&b, "  %-24s %d\n", name, c.values[name])
	}
	return b.String()
}

// RenderCDFASCII renders a compact CDF sparkline table for terminal output.
func RenderCDFASCII(name string, s *Sample, width int) string {
	if s.Len() == 0 {
		return fmt.Sprintf("%s: (no samples)", name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %s\n", name, s.Summary())
	marks := []float64{10, 25, 50, 75, 90, 99, 99.9}
	for _, p := range marks {
		v := s.Percentile(p)
		bar := int(p / 100 * float64(width))
		fmt.Fprintf(&b, "  p%-5.1f %9.2fµs |%s\n", p, Micros(v), strings.Repeat("#", bar))
	}
	return b.String()
}
