package stats

import (
	"math/bits"
	"time"
)

// HistBuckets is the number of fixed log2-spaced buckets in a Histogram:
// bucket i covers virtual durations in [2^(i-1), 2^i) ns (bucket 0 holds
// non-positive observations), so the bucket layout spans 1 ns to ~292 years
// of virtual time without ever depending on the data. Fixed boundaries are
// what make histograms mergeable across workers and byte-identical across
// runs — the properties the trace determinism oracle asserts.
const HistBuckets = 64

// Histogram is a fixed-bucket latency histogram over virtual durations.
// Unlike Sample it never retains raw observations, so its memory cost is
// constant no matter how many faults a run handles, and two histograms fed
// the same observations in any order are identical — including their
// percentile estimates, which interpolate linearly inside a bucket.
//
// The zero value is an empty histogram ready to use.
type Histogram struct {
	counts [HistBuckets]uint64
	n      uint64
	sum    time.Duration
	max    time.Duration
}

// histBucket maps a duration to its bucket index.
func histBucket(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// histBucketBounds returns the [lo, hi) duration range of bucket i.
func histBucketBounds(i int) (lo, hi time.Duration) {
	if i == 0 {
		return 0, 1
	}
	return time.Duration(1) << uint(i-1), time.Duration(1) << uint(i)
}

// Add records one observation.
func (h *Histogram) Add(d time.Duration) {
	h.counts[histBucket(d)]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Max returns the largest observation (tracked exactly, not bucketed).
func (h *Histogram) Max() time.Duration { return h.max }

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Merge folds other into h (the per-worker to merged-view reduction).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Percentile estimates the p-th percentile (p in [0, 100]): the bucket
// holding the rank is found by cumulative count, and the estimate
// interpolates linearly inside it, clamped to the exact tracked maximum.
// It returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(h.n)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo, hi := histBucketBounds(i)
			est := lo + time.Duration((rank-cum)/float64(c)*float64(hi-lo))
			if est > h.max {
				est = h.max
			}
			return est
		}
		cum = next
	}
	return h.max
}

// Sub returns the bucket-wise difference h - prev: the histogram of the
// window between two cumulative snapshots of the same monotone accumulator
// (the inverse of Merge, and the histogram analogue of hotset.Curve.Sub).
// Each cell of prev must be <= the matching cell of h — the caller's
// snapshots are cumulative, so this holds by construction. Max cannot be
// windowed from bucket counts alone; the result carries the cumulative max,
// which Percentile only uses as an upper clamp, so window percentile
// estimates stay conservative (never above the largest observation ever
// seen, never below the window's own bucket interpolation).
func (h Histogram) Sub(prev Histogram) Histogram {
	out := h
	for i := range prev.counts {
		out.counts[i] -= prev.counts[i]
	}
	out.n -= prev.n
	out.sum -= prev.sum
	return out
}

// Buckets returns a copy of the raw bucket counts (export/debug surface).
func (h *Histogram) Buckets() [HistBuckets]uint64 { return h.counts }
