package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func sampleOf(us ...int) *Sample {
	s := NewSample(len(us))
	for _, v := range us {
		s.Add(time.Duration(v) * time.Microsecond)
	}
	return s
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stdev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should summarise to zeros")
	}
	if s.Percentile(50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	if s.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestSampleMean(t *testing.T) {
	s := sampleOf(10, 20, 30)
	if got, want := s.Mean(), 20*time.Microsecond; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestSampleStdev(t *testing.T) {
	s := sampleOf(10, 10, 10)
	if got := s.Stdev(); got != 0 {
		t.Fatalf("Stdev of constant sample = %v, want 0", got)
	}
	s2 := sampleOf(0, 20)
	if got, want := s2.Stdev(), 10*time.Microsecond; got != want {
		t.Fatalf("Stdev = %v, want %v", got, want)
	}
}

func TestSampleMinMax(t *testing.T) {
	s := sampleOf(5, 1, 9, 3)
	if got := s.Min(); got != time.Microsecond {
		t.Fatalf("Min = %v", got)
	}
	if got := s.Max(); got != 9*time.Microsecond {
		t.Fatalf("Max = %v", got)
	}
}

func TestPercentileEndpoints(t *testing.T) {
	s := sampleOf(1, 2, 3, 4, 5)
	if got := s.Percentile(0); got != time.Microsecond {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 5*time.Microsecond {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Percentile(50); got != 3*time.Microsecond {
		t.Fatalf("p50 = %v", got)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	s := sampleOf(0, 100)
	if got, want := s.Percentile(25), 25*time.Microsecond; got != want {
		t.Fatalf("p25 = %v, want %v", got, want)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, pa, pb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(len(raw))
		for _, v := range raw {
			s.Add(time.Duration(v))
		}
		a := float64(pa) / 2.55 // map to [0,100]
		b := float64(pb) / 2.55
		if a > b {
			a, b = b, a
		}
		return s.Percentile(a) <= s.Percentile(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFShape(t *testing.T) {
	s := NewSample(100)
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Microsecond)
	}
	cdf := s.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("len(cdf) = %d, want 10", len(cdf))
	}
	if cdf[len(cdf)-1].Fraction != 1.0 {
		t.Fatalf("last fraction = %v, want 1", cdf[len(cdf)-1].Fraction)
	}
	if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].Latency < cdf[j].Latency }) {
		t.Fatal("CDF latencies not monotone")
	}
}

func TestCDFMoreRequestedThanSamples(t *testing.T) {
	s := sampleOf(1, 2)
	cdf := s.CDF(10)
	if len(cdf) != 2 {
		t.Fatalf("len = %d, want 2", len(cdf))
	}
}

func TestFractionBelow(t *testing.T) {
	s := sampleOf(1, 5, 10, 50, 100)
	if got := s.FractionBelow(10 * time.Microsecond); got != 0.4 {
		t.Fatalf("FractionBelow(10µs) = %v, want 0.4", got)
	}
	if got := s.FractionBelow(1000 * time.Microsecond); got != 1.0 {
		t.Fatalf("FractionBelow(1ms) = %v, want 1", got)
	}
	if got := s.FractionBelow(0); got != 0 {
		t.Fatalf("FractionBelow(0) = %v, want 0", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	hm, err := HarmonicMean([]float64{1, 1, 1})
	if err != nil || hm != 1 {
		t.Fatalf("HarmonicMean(1,1,1) = %v, %v", hm, err)
	}
	hm, err = HarmonicMean([]float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hm-3) > 1e-9 {
		t.Fatalf("HarmonicMean(2,6) = %v, want 3", hm)
	}
}

func TestHarmonicMeanDominatedBySlowest(t *testing.T) {
	hm, err := HarmonicMean([]float64{1000, 1000, 1})
	if err != nil {
		t.Fatal(err)
	}
	if hm > 3 {
		t.Fatalf("harmonic mean %v should be pulled toward the slowest rate", hm)
	}
}

func TestHarmonicMeanErrors(t *testing.T) {
	if _, err := HarmonicMean(nil); err == nil {
		t.Fatal("want error for empty slice")
	}
	if _, err := HarmonicMean([]float64{1, 0}); err == nil {
		t.Fatal("want error for zero rate")
	}
	if _, err := HarmonicMean([]float64{-1}); err == nil {
		t.Fatal("want error for negative rate")
	}
}

func TestMicros(t *testing.T) {
	if got := Micros(1500 * time.Nanosecond); got != 1.5 {
		t.Fatalf("Micros = %v, want 1.5", got)
	}
}

func TestTimeSeriesMean(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 10*time.Microsecond)
	ts.Add(time.Second, 30*time.Microsecond)
	if got, want := ts.Mean(), 20*time.Microsecond; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestTimeSeriesBuckets(t *testing.T) {
	var ts TimeSeries
	for i := 0; i < 100; i++ {
		ts.Add(time.Duration(i)*time.Second, time.Duration(i)*time.Microsecond)
	}
	buckets := ts.Buckets(10)
	if len(buckets) != 10 {
		t.Fatalf("len(buckets) = %d, want 10", len(buckets))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].At <= buckets[i-1].At {
			t.Fatal("bucket midpoints not increasing")
		}
		if buckets[i].Value <= buckets[i-1].Value {
			t.Fatal("ramp series should have increasing bucket means")
		}
	}
}

func TestTimeSeriesBucketsSingle(t *testing.T) {
	var ts TimeSeries
	ts.Add(5*time.Second, 7*time.Microsecond)
	buckets := ts.Buckets(4)
	if len(buckets) != 1 || buckets[0].Value != 7*time.Microsecond {
		t.Fatalf("buckets = %+v", buckets)
	}
}

func TestTimeSeriesEmptyBuckets(t *testing.T) {
	var ts TimeSeries
	if got := ts.Buckets(5); got != nil {
		t.Fatalf("empty Buckets = %v, want nil", got)
	}
}

func TestRenderCDFASCIIIncludesSummary(t *testing.T) {
	s := sampleOf(1, 2, 3)
	out := RenderCDFASCII("test", s, 20)
	if out == "" || len(out) < 10 {
		t.Fatalf("render too short: %q", out)
	}
	var empty Sample
	if got := RenderCDFASCII("e", &empty, 20); got != "e: (no samples)" {
		t.Fatalf("empty render = %q", got)
	}
}
