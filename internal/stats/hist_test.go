package stats

import (
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Fatalf("empty histogram not zero: count=%d max=%v mean=%v p99=%v",
			h.Count(), h.Max(), h.Mean(), h.Percentile(99))
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Nanosecond, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3},
		{1023, 10}, {1024, 11}, {time.Duration(1) << 62, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.d); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	// Bounds must tile: hi of bucket i == lo of bucket i+1.
	for i := 0; i < HistBuckets-2; i++ {
		_, hi := histBucketBounds(i)
		lo, _ := histBucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("buckets %d/%d do not tile: hi=%d lo=%d", i, i+1, hi, lo)
		}
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 100 observations of exactly 1µs: every percentile must land inside
	// the 1µs bucket and be clamped to the exact max.
	for i := 0; i < 100; i++ {
		h.Add(time.Microsecond)
	}
	for _, p := range []float64{50, 90, 99, 100} {
		got := h.Percentile(p)
		if got > time.Microsecond || got < 512*time.Nanosecond {
			t.Errorf("p%.0f = %v, want within (512ns, 1µs]", p, got)
		}
	}
	if h.Max() != time.Microsecond {
		t.Errorf("max = %v", h.Max())
	}
	if h.Mean() != time.Microsecond {
		t.Errorf("mean = %v", h.Mean())
	}

	// Bimodal: 90 fast (1µs) + 10 slow (1ms). p50 must sit in the fast
	// mode, p99 in the slow mode.
	var b Histogram
	for i := 0; i < 90; i++ {
		b.Add(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		b.Add(time.Millisecond)
	}
	if p50 := b.Percentile(50); p50 > 2*time.Microsecond {
		t.Errorf("bimodal p50 = %v, want ~1µs", p50)
	}
	if p99 := b.Percentile(99); p99 < 512*time.Microsecond {
		t.Errorf("bimodal p99 = %v, want in the ms bucket", p99)
	}
	if b.Percentile(100) != time.Millisecond {
		t.Errorf("p100 = %v, want exact max", b.Percentile(100))
	}
}

// Percentiles must not depend on insertion order, and Merge of per-worker
// cells must equal one histogram fed everything.
func TestHistogramOrderInvarianceAndMerge(t *testing.T) {
	ds := []time.Duration{5 * time.Microsecond, time.Microsecond, time.Millisecond,
		3 * time.Microsecond, 40 * time.Nanosecond, 7 * time.Microsecond}

	var fwd, rev Histogram
	for _, d := range ds {
		fwd.Add(d)
	}
	for i := len(ds) - 1; i >= 0; i-- {
		rev.Add(ds[i])
	}
	if fwd != rev {
		t.Fatal("histogram depends on insertion order")
	}

	var a, b, merged Histogram
	for i, d := range ds {
		if i%2 == 0 {
			a.Add(d)
		} else {
			b.Add(d)
		}
	}
	merged.Merge(&a)
	merged.Merge(&b)
	if merged != fwd {
		t.Fatal("merge of split cells differs from direct accumulation")
	}
	merged.Merge(nil) // must be a no-op
	if merged != fwd {
		t.Fatal("Merge(nil) changed the histogram")
	}
}

// Sub must invert Merge: (cumulative later) - (cumulative earlier) equals a
// histogram fed only the window's observations, in every bucket, with the
// window percentile falling out of the differenced counts.
func TestHistogramSubWindows(t *testing.T) {
	early := []time.Duration{time.Microsecond, 3 * time.Microsecond, time.Millisecond}
	late := []time.Duration{5 * time.Microsecond, 7 * time.Microsecond, 40 * time.Nanosecond}

	var cum Histogram
	for _, d := range early {
		cum.Add(d)
	}
	base := cum
	for _, d := range late {
		cum.Add(d)
	}
	window := cum.Sub(base)

	var direct Histogram
	for _, d := range late {
		direct.Add(d)
	}
	if window.Count() != direct.Count() {
		t.Fatalf("window count %d, want %d", window.Count(), direct.Count())
	}
	if window.Buckets() != direct.Buckets() {
		t.Fatal("window bucket counts differ from direct accumulation")
	}
	if window.Mean() != direct.Mean() {
		t.Fatalf("window mean %v, want %v", window.Mean(), direct.Mean())
	}
	// The window's percentile uses the differenced counts; the carried
	// cumulative max only clamps, so p50 of the window must sit in the
	// window's own buckets, not the early millisecond outlier's.
	if p := window.Percentile(50); p > 8*time.Microsecond {
		t.Fatalf("window p50 %v leaked pre-window observations", p)
	}
	// Subtracting the full accumulation leaves the empty histogram's
	// percentile behaviour (count 0 -> 0), bar the carried max.
	empty := cum.Sub(cum)
	if empty.Count() != 0 || empty.Percentile(99) != 0 {
		t.Fatalf("full self-subtraction not empty: count=%d p99=%v", empty.Count(), empty.Percentile(99))
	}
}
