package stats

import (
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Fatalf("empty histogram not zero: count=%d max=%v mean=%v p99=%v",
			h.Count(), h.Max(), h.Mean(), h.Percentile(99))
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Nanosecond, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3},
		{1023, 10}, {1024, 11}, {time.Duration(1) << 62, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.d); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	// Bounds must tile: hi of bucket i == lo of bucket i+1.
	for i := 0; i < HistBuckets-2; i++ {
		_, hi := histBucketBounds(i)
		lo, _ := histBucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("buckets %d/%d do not tile: hi=%d lo=%d", i, i+1, hi, lo)
		}
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 100 observations of exactly 1µs: every percentile must land inside
	// the 1µs bucket and be clamped to the exact max.
	for i := 0; i < 100; i++ {
		h.Add(time.Microsecond)
	}
	for _, p := range []float64{50, 90, 99, 100} {
		got := h.Percentile(p)
		if got > time.Microsecond || got < 512*time.Nanosecond {
			t.Errorf("p%.0f = %v, want within (512ns, 1µs]", p, got)
		}
	}
	if h.Max() != time.Microsecond {
		t.Errorf("max = %v", h.Max())
	}
	if h.Mean() != time.Microsecond {
		t.Errorf("mean = %v", h.Mean())
	}

	// Bimodal: 90 fast (1µs) + 10 slow (1ms). p50 must sit in the fast
	// mode, p99 in the slow mode.
	var b Histogram
	for i := 0; i < 90; i++ {
		b.Add(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		b.Add(time.Millisecond)
	}
	if p50 := b.Percentile(50); p50 > 2*time.Microsecond {
		t.Errorf("bimodal p50 = %v, want ~1µs", p50)
	}
	if p99 := b.Percentile(99); p99 < 512*time.Microsecond {
		t.Errorf("bimodal p99 = %v, want in the ms bucket", p99)
	}
	if b.Percentile(100) != time.Millisecond {
		t.Errorf("p100 = %v, want exact max", b.Percentile(100))
	}
}

// Percentiles must not depend on insertion order, and Merge of per-worker
// cells must equal one histogram fed everything.
func TestHistogramOrderInvarianceAndMerge(t *testing.T) {
	ds := []time.Duration{5 * time.Microsecond, time.Microsecond, time.Millisecond,
		3 * time.Microsecond, 40 * time.Nanosecond, 7 * time.Microsecond}

	var fwd, rev Histogram
	for _, d := range ds {
		fwd.Add(d)
	}
	for i := len(ds) - 1; i >= 0; i-- {
		rev.Add(ds[i])
	}
	if fwd != rev {
		t.Fatal("histogram depends on insertion order")
	}

	var a, b, merged Histogram
	for i, d := range ds {
		if i%2 == 0 {
			a.Add(d)
		} else {
			b.Add(d)
		}
	}
	merged.Merge(&a)
	merged.Merge(&b)
	if merged != fwd {
		t.Fatal("merge of split cells differs from direct accumulation")
	}
	merged.Merge(nil) // must be a no-op
	if merged != fwd {
		t.Fatal("Merge(nil) changed the histogram")
	}
}

// Sub must invert Merge: (cumulative later) - (cumulative earlier) equals a
// histogram fed only the window's observations, in every bucket, with the
// window percentile falling out of the differenced counts.
func TestHistogramSubWindows(t *testing.T) {
	early := []time.Duration{time.Microsecond, 3 * time.Microsecond, time.Millisecond}
	late := []time.Duration{5 * time.Microsecond, 7 * time.Microsecond, 40 * time.Nanosecond}

	var cum Histogram
	for _, d := range early {
		cum.Add(d)
	}
	base := cum
	for _, d := range late {
		cum.Add(d)
	}
	window := cum.Sub(base)

	var direct Histogram
	for _, d := range late {
		direct.Add(d)
	}
	if window.Count() != direct.Count() {
		t.Fatalf("window count %d, want %d", window.Count(), direct.Count())
	}
	if window.Buckets() != direct.Buckets() {
		t.Fatal("window bucket counts differ from direct accumulation")
	}
	if window.Mean() != direct.Mean() {
		t.Fatalf("window mean %v, want %v", window.Mean(), direct.Mean())
	}
	// The window's percentile uses the differenced counts; the carried
	// cumulative max only clamps, so p50 of the window must sit in the
	// window's own buckets, not the early millisecond outlier's.
	if p := window.Percentile(50); p > 8*time.Microsecond {
		t.Fatalf("window p50 %v leaked pre-window observations", p)
	}
	// Subtracting the full accumulation leaves the empty histogram's
	// percentile behaviour (count 0 -> 0), bar the carried max.
	empty := cum.Sub(cum)
	if empty.Count() != 0 || empty.Percentile(99) != 0 {
		t.Fatalf("full self-subtraction not empty: count=%d p99=%v", empty.Count(), empty.Percentile(99))
	}
}

// Subtracting a snapshot from itself must behave as the empty histogram in
// every derived quantity — zero count, zero buckets, zero mean, and zero at
// every percentile including the clamped endpoints — no matter what the
// accumulator had seen. The carried cumulative max is the one field allowed
// to be nonzero, and it must never leak into an empty window's percentiles
// (an SLO evaluation of a window with no faults must read "no latency", not
// "the worst latency ever").
func TestHistogramSubSelfEmptyPercentiles(t *testing.T) {
	states := [][]time.Duration{
		nil, // empty minus empty
		{time.Microsecond},
		{40 * time.Nanosecond, time.Microsecond, time.Millisecond, time.Second},
		// Edge buckets: non-positive observations and the saturating top bucket.
		{0, -time.Nanosecond, time.Duration(1) << 62},
	}
	for si, ds := range states {
		var h Histogram
		for _, d := range ds {
			h.Add(d)
		}
		w := h.Sub(h)
		if w.Count() != 0 {
			t.Fatalf("state %d: self-sub count = %d", si, w.Count())
		}
		if w.Buckets() != ([HistBuckets]uint64{}) {
			t.Fatalf("state %d: self-sub left nonzero buckets", si)
		}
		if w.Mean() != 0 {
			t.Fatalf("state %d: self-sub mean = %v", si, w.Mean())
		}
		for _, p := range []float64{0, 50, 99, 100, -5, 200} {
			if got := w.Percentile(p); got != 0 {
				t.Fatalf("state %d: self-sub p%g = %v, want 0", si, p, got)
			}
		}
	}
}

// Sub must commute with Merge: differencing merged cumulative snapshots
// gives the same window whichever order the per-worker cells were folded in,
// and equals the merge of the per-cell windows. This is the algebra the
// host's epoch accounting leans on — it snapshots PhaseHistogram (a merge
// over worker cells) and differences consecutive snapshots, so a change in
// how observations were partitioned across workers must never show up in a
// window.
func TestHistogramSubAfterMergeOrderInvariant(t *testing.T) {
	// Three worker cells, each snapshotted mid-accumulation. Durations are a
	// deterministic spread across several buckets.
	cells := make([]Histogram, 3)
	snaps := make([]Histogram, 3)
	dur := func(i, j int) time.Duration {
		return time.Duration(1+(uint64(i*977+j)*2654435761)%5_000_000) * time.Nanosecond
	}
	for i := range cells {
		for j := 0; j < 50+i*7; j++ {
			cells[i].Add(dur(i, j))
		}
		snaps[i] = cells[i] // the cumulative "window open" snapshot
		for j := 0; j < 70+i*11; j++ {
			cells[i].Add(dur(i, 1000+j))
		}
	}
	merge := func(hs []Histogram, order []int) Histogram {
		var m Histogram
		for _, i := range order {
			m.Merge(&hs[i])
		}
		return m
	}
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {2, 0, 1}}
	ref := merge(cells, orders[0]).Sub(merge(snaps, orders[0]))
	if ref.Count() == 0 {
		t.Fatal("vacuous window")
	}
	for _, ord := range orders[1:] {
		if got := merge(cells, ord).Sub(merge(snaps, ord)); got != ref {
			t.Fatalf("merge order %v changed the window: %+v vs %+v", ord, got, ref)
		}
	}
	// Distributivity: windowing each cell and merging the windows is the
	// same histogram as windowing the merged cumulatives.
	var dist Histogram
	for i := range cells {
		w := cells[i].Sub(snaps[i])
		dist.Merge(&w)
	}
	if dist != ref {
		t.Fatalf("merge of per-cell windows differs from window of merged cumulatives: %+v vs %+v", dist, ref)
	}
}
