// Package zookeeper provides a small replicated, globally-consistent table
// service in the spirit of Apache ZooKeeper, backed by the raft package. The
// paper (§IV) uses ZooKeeper to guarantee global uniqueness of the virtual
// partition index built from (PID, hypervisor ID, nonce); this package offers
// the znode-table subset FluidMem needs: versioned create/get/set/delete,
// prefix listing, and sequential nodes for unique nonce allocation.
package zookeeper

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/raft"
	"fluidmem/internal/simnet"
)

// Errors returned by table operations, matching ZooKeeper's error vocabulary.
var (
	ErrNodeExists = errors.New("zookeeper: node already exists")
	ErrNoNode     = errors.New("zookeeper: node does not exist")
	ErrBadVersion = errors.New("zookeeper: version mismatch")
	ErrTimeout    = errors.New("zookeeper: operation timed out")
)

// op kinds.
const (
	opCreate    = "create"
	opCreateSeq = "create-seq"
	opGet       = "get"
	opSet       = "set"
	opDelete    = "delete"
	opList      = "list"
)

// command is one replicated table operation. Every operation, including
// reads, goes through the log, which makes all operations linearizable.
type command struct {
	ID      uint64
	Kind    string
	Path    string
	Data    []byte
	Version uint64
}

// result is the outcome of an applied command.
type result struct {
	Err     error
	Data    []byte
	Version uint64
	Path    string
	Names   []string
}

type znode struct {
	data    []byte
	version uint64
}

// table is the deterministic state machine replicated by raft.
type table struct {
	nodes   map[string]*znode
	seq     map[string]uint64
	results map[uint64]result // opID → result, for exactly-once retries
}

func newTable() *table {
	return &table{
		nodes:   make(map[string]*znode),
		seq:     make(map[string]uint64),
		results: make(map[uint64]result),
	}
}

func (t *table) apply(cmd command) result {
	if r, done := t.results[cmd.ID]; done {
		return r // duplicate delivery of a retried proposal
	}
	var r result
	switch cmd.Kind {
	case opCreate:
		if _, exists := t.nodes[cmd.Path]; exists {
			r.Err = ErrNodeExists
			break
		}
		t.nodes[cmd.Path] = &znode{data: append([]byte(nil), cmd.Data...), version: 1}
		r.Path = cmd.Path
		r.Version = 1
	case opCreateSeq:
		t.seq[cmd.Path]++
		path := fmt.Sprintf("%s%010d", cmd.Path, t.seq[cmd.Path])
		t.nodes[path] = &znode{data: append([]byte(nil), cmd.Data...), version: 1}
		r.Path = path
		r.Version = 1
	case opGet:
		n, exists := t.nodes[cmd.Path]
		if !exists {
			r.Err = ErrNoNode
			break
		}
		r.Data = append([]byte(nil), n.data...)
		r.Version = n.version
	case opSet:
		n, exists := t.nodes[cmd.Path]
		if !exists {
			r.Err = ErrNoNode
			break
		}
		if cmd.Version != 0 && cmd.Version != n.version {
			r.Err = ErrBadVersion
			break
		}
		n.data = append([]byte(nil), cmd.Data...)
		n.version++
		r.Version = n.version
	case opDelete:
		n, exists := t.nodes[cmd.Path]
		if !exists {
			r.Err = ErrNoNode
			break
		}
		if cmd.Version != 0 && cmd.Version != n.version {
			r.Err = ErrBadVersion
			break
		}
		delete(t.nodes, cmd.Path)
	case opList:
		for path := range t.nodes {
			if strings.HasPrefix(path, cmd.Path) {
				r.Names = append(r.Names, path)
			}
		}
		sort.Strings(r.Names)
	default:
		r.Err = fmt.Errorf("zookeeper: unknown op %q", cmd.Kind)
	}
	t.results[cmd.ID] = r
	return r
}

// Cluster is an ensemble of raft-replicated tables with a synchronous client
// API. Client calls drive the shared simnet event loop until the operation
// commits, so from the caller's perspective operations are simple blocking
// calls on the virtual timeline.
type Cluster struct {
	net    *simnet.Network
	nodes  []*raft.Node
	tables []*table
	done   map[uint64]result // results observed via apply on node 0..n
	nextID uint64
	// OpTimeout bounds how long (virtual time) one attempt may take.
	OpTimeout time.Duration
}

// NewCluster builds an n-replica ensemble on a private network. Odd n
// recommended. The returned cluster has already elected a leader.
func NewCluster(n int, seed uint64) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("zookeeper: cluster size %d < 1", n)
	}
	net := simnet.New(clock.LatencyModel{Base: 2 * time.Millisecond, Jitter: 500 * time.Microsecond}, seed)
	c := &Cluster{
		net:       net,
		done:      make(map[uint64]result),
		OpTimeout: 30 * time.Second,
	}
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("zk%d", i)
	}
	for i, id := range peers {
		tbl := newTable()
		c.tables = append(c.tables, tbl)
		node := raft.NewNode(raft.Config{ID: id, Peers: peers, Seed: seed + uint64(i)}, net, func(index uint64, cmd any) {
			// Every replica computes the identical result (deterministic
			// state machine), so recording from any of them is safe and
			// keeps the client responsive even if some replica is down.
			c.done[cmd.(command).ID] = tbl.apply(cmd.(command))
		})
		c.nodes = append(c.nodes, node)
	}
	// Elect an initial leader.
	deadline := net.Clock.Now() + time.Minute
	for c.leader() == nil && net.Clock.Now() < deadline {
		net.RunFor(10 * time.Millisecond)
	}
	if c.leader() == nil {
		return nil, errors.New("zookeeper: initial leader election failed")
	}
	return c, nil
}

// Network exposes the underlying fabric for fault-injection in tests.
func (c *Cluster) Network() *simnet.Network { return c.net }

// Create makes a new znode. It fails with ErrNodeExists if path is taken.
func (c *Cluster) Create(path string, data []byte) error {
	r, err := c.do(command{Kind: opCreate, Path: path, Data: data})
	if err != nil {
		return err
	}
	return r.Err
}

// CreateSequential creates a znode at prefix + a cluster-unique, monotonic
// 10-digit sequence number, returning the full path. This is the primitive
// the partition registry uses to mint globally unique nonces.
func (c *Cluster) CreateSequential(prefix string, data []byte) (string, error) {
	r, err := c.do(command{Kind: opCreateSeq, Path: prefix, Data: data})
	if err != nil {
		return "", err
	}
	return r.Path, r.Err
}

// Get returns a znode's data and version.
func (c *Cluster) Get(path string) ([]byte, uint64, error) {
	r, err := c.do(command{Kind: opGet, Path: path})
	if err != nil {
		return nil, 0, err
	}
	return r.Data, r.Version, r.Err
}

// Set replaces a znode's data. version 0 means unconditional; otherwise the
// write succeeds only if the current version matches (compare-and-set).
func (c *Cluster) Set(path string, data []byte, version uint64) (uint64, error) {
	r, err := c.do(command{Kind: opSet, Path: path, Data: data, Version: version})
	if err != nil {
		return 0, err
	}
	return r.Version, r.Err
}

// Delete removes a znode, with the same version semantics as Set.
func (c *Cluster) Delete(path string, version uint64) error {
	r, err := c.do(command{Kind: opDelete, Path: path, Version: version})
	if err != nil {
		return err
	}
	return r.Err
}

// List returns the sorted paths with the given prefix.
func (c *Cluster) List(prefix string) ([]string, error) {
	r, err := c.do(command{Kind: opList, Path: prefix})
	if err != nil {
		return nil, err
	}
	return r.Names, r.Err
}

func (c *Cluster) leader() *raft.Node {
	var lead *raft.Node
	for _, n := range c.nodes {
		if n.Role() == raft.Leader {
			if lead == nil || n.Term() > lead.Term() {
				lead = n
			}
		}
	}
	return lead
}

// do proposes cmd through the current leader and pumps the event loop until
// node 0 applies it, retrying across leader changes. Proposals are
// deduplicated by ID inside the state machine, so retries are exactly-once.
func (c *Cluster) do(cmd command) (result, error) {
	c.nextID++
	cmd.ID = c.nextID
	overall := c.net.Clock.Now() + c.OpTimeout
	for c.net.Clock.Now() < overall {
		lead := c.leader()
		if lead == nil {
			c.net.RunFor(20 * time.Millisecond)
			continue
		}
		if _, _, ok := lead.Propose(cmd); !ok {
			c.net.RunFor(20 * time.Millisecond)
			continue
		}
		attempt := c.net.Clock.Now() + 2*time.Second
		for c.net.Clock.Now() < attempt {
			if r, ok := c.done[cmd.ID]; ok {
				return r, nil
			}
			c.net.RunFor(5 * time.Millisecond)
		}
	}
	if r, ok := c.done[cmd.ID]; ok {
		return r, nil
	}
	return result{}, ErrTimeout
}
