package zookeeper

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"fluidmem/internal/raft"
)

func newTestCluster(t *testing.T, n int, seed uint64) *Cluster {
	t.Helper()
	c, err := NewCluster(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCreateGet(t *testing.T) {
	c := newTestCluster(t, 3, 1)
	if err := c.Create("/fluidmem/partitions/p1", []byte("vm-a")); err != nil {
		t.Fatal(err)
	}
	data, version, err := c.Get("/fluidmem/partitions/p1")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "vm-a" || version != 1 {
		t.Fatalf("got %q v%d", data, version)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	if err := c.Create("/x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/x", []byte("2")); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("err = %v, want ErrNodeExists", err)
	}
	// Original data intact.
	data, _, err := c.Get("/x")
	if err != nil || string(data) != "1" {
		t.Fatalf("data = %q, err = %v", data, err)
	}
}

func TestGetMissing(t *testing.T) {
	c := newTestCluster(t, 3, 3)
	if _, _, err := c.Get("/nope"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("err = %v, want ErrNoNode", err)
	}
}

func TestSetVersionedCAS(t *testing.T) {
	c := newTestCluster(t, 3, 4)
	if err := c.Create("/cas", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v2, err := c.Set("/cas", []byte("v2"), 1)
	if err != nil || v2 != 2 {
		t.Fatalf("Set = v%d, %v", v2, err)
	}
	// Stale version must fail.
	if _, err := c.Set("/cas", []byte("v3"), 1); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
	// Unconditional set (version 0) succeeds.
	v3, err := c.Set("/cas", []byte("v3"), 0)
	if err != nil || v3 != 3 {
		t.Fatalf("Set = v%d, %v", v3, err)
	}
}

func TestSetMissing(t *testing.T) {
	c := newTestCluster(t, 1, 5)
	if _, err := c.Set("/missing", nil, 0); !errors.Is(err, ErrNoNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	c := newTestCluster(t, 3, 6)
	if err := c.Create("/d", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("/d", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("/d"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("err after delete = %v", err)
	}
	if err := c.Delete("/d", 0); !errors.Is(err, ErrNoNode) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestDeleteBadVersion(t *testing.T) {
	c := newTestCluster(t, 1, 7)
	if err := c.Create("/d", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("/d", 42); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateSequentialUnique(t *testing.T) {
	c := newTestCluster(t, 3, 8)
	seen := make(map[string]bool)
	for i := 0; i < 10; i++ {
		path, err := c.CreateSequential("/partitions/nonce-", []byte(fmt.Sprintf("vm%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(path, "/partitions/nonce-") {
			t.Fatalf("path = %q", path)
		}
		if seen[path] {
			t.Fatalf("duplicate sequential path %q", path)
		}
		seen[path] = true
	}
}

func TestCreateSequentialMonotonic(t *testing.T) {
	c := newTestCluster(t, 1, 9)
	var prev string
	for i := 0; i < 5; i++ {
		path, err := c.CreateSequential("/seq-", nil)
		if err != nil {
			t.Fatal(err)
		}
		if prev != "" && path <= prev {
			t.Fatalf("sequence not monotonic: %q then %q", prev, path)
		}
		prev = path
	}
}

func TestList(t *testing.T) {
	c := newTestCluster(t, 3, 10)
	for _, p := range []string{"/a/1", "/a/2", "/b/1"} {
		if err := c.Create(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	names, err := c.List("/a/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "/a/1" || names[1] != "/a/2" {
		t.Fatalf("List = %v", names)
	}
	all, err := c.List("/")
	if err != nil || len(all) != 3 {
		t.Fatalf("List(/) = %v, %v", all, err)
	}
}

func TestSingleReplicaCluster(t *testing.T) {
	c := newTestCluster(t, 1, 11)
	if err := c.Create("/solo", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	data, _, err := c.Get("/solo")
	if err != nil || string(data) != "ok" {
		t.Fatalf("%q, %v", data, err)
	}
}

func TestClusterSizeValidation(t *testing.T) {
	if _, err := NewCluster(0, 1); err == nil {
		t.Fatal("want error for size 0")
	}
}

func TestReplicasConverge(t *testing.T) {
	c := newTestCluster(t, 3, 12)
	for i := 0; i < 5; i++ {
		if err := c.Create(fmt.Sprintf("/n%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Let replication settle, then compare all state machines directly.
	c.Network().RunFor(3 * time.Second)
	ref := c.tables[0].nodes
	if len(ref) != 5 {
		t.Fatalf("table 0 has %d nodes", len(ref))
	}
	for i, tbl := range c.tables[1:] {
		if len(tbl.nodes) != len(ref) {
			t.Fatalf("replica %d has %d nodes, want %d", i+1, len(tbl.nodes), len(ref))
		}
		for path, n := range ref {
			other, ok := tbl.nodes[path]
			if !ok || string(other.data) != string(n.data) || other.version != n.version {
				t.Fatalf("replica %d diverges at %q", i+1, path)
			}
		}
	}
}

func TestSurvivesFollowerPartition(t *testing.T) {
	c := newTestCluster(t, 3, 13)
	// Partition one follower; the remaining quorum keeps serving.
	for i, n := range c.nodes {
		if n.Role() == raft.Follower {
			c.Network().Partition(fmt.Sprintf("zk%d", i))
			break
		}
	}
	if err := c.Create("/during-partition", []byte("x")); err != nil {
		t.Fatalf("write during follower partition failed: %v", err)
	}
	data, _, err := c.Get("/during-partition")
	if err != nil || string(data) != "x" {
		t.Fatalf("read back %q, %v", data, err)
	}
}
