// Package pmbench reimplements the paging micro-benchmark the paper uses for
// its latency measurements (§VI-B): after a warm-up pass that touches every
// page of the working set once, it issues uniformly random 4 KB accesses at
// a configurable read/write ratio for a fixed (virtual) duration, recording
// the latency distribution of each access.
package pmbench

import (
	"fmt"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/stats"
	"fluidmem/internal/vm"
)

// Config parametrises a run.
type Config struct {
	// WSSBytes is the working set size (the paper uses a 4 GB allocation).
	WSSBytes uint64
	// Duration is how long (virtual time) to issue accesses after warm-up
	// (the paper runs 100 s).
	Duration time.Duration
	// MaxAccesses optionally caps the access count regardless of Duration
	// (0 = no cap); useful to bound simulation work.
	MaxAccesses int
	// ReadRatio is the fraction of reads (the paper uses 0.5).
	ReadRatio float64
	// FillDensity is the fraction of non-zero bytes written to each page
	// during warm-up. 0 leaves pages zero-filled (fresh-VM behaviour);
	// higher densities model populated application heaps — relevant to
	// compression studies.
	FillDensity float64
	// Seed drives the access pattern.
	Seed uint64
}

// DefaultConfig mirrors the paper's pmbench invocation, scaled by wssBytes.
func DefaultConfig(wssBytes uint64) Config {
	return Config{
		WSSBytes:  wssBytes,
		Duration:  100 * time.Second,
		ReadRatio: 0.5,
		Seed:      1,
	}
}

// Result summarises a run.
type Result struct {
	// Latencies is the per-access latency sample (reads and writes).
	Latencies *stats.Sample
	// ReadLatencies and WriteLatencies split the sample by operation.
	ReadLatencies  *stats.Sample
	WriteLatencies *stats.Sample
	// Accesses is the number of timed accesses.
	Accesses int
	// WarmupTime is the virtual time spent warming the working set.
	WarmupTime time.Duration
	// RunTime is the virtual time spent in the timed phase.
	RunTime time.Duration
}

// Run executes pmbench against the VM, allocating its working set from guest
// memory. It returns the result and the machine time at completion.
func Run(now time.Duration, v *vm.VM, cfg Config) (*Result, time.Duration, error) {
	if cfg.WSSBytes < vm.PageSize {
		return nil, now, fmt.Errorf("pmbench: working set %d too small", cfg.WSSBytes)
	}
	if cfg.ReadRatio < 0 || cfg.ReadRatio > 1 {
		return nil, now, fmt.Errorf("pmbench: read ratio %v out of [0,1]", cfg.ReadRatio)
	}
	seg, err := v.Alloc("pmbench.wss", cfg.WSSBytes, vm.ClassAnon)
	if err != nil {
		return nil, now, fmt.Errorf("pmbench: %w", err)
	}
	rng := clock.NewRand(cfg.Seed)
	pages := seg.Pages()

	if cfg.FillDensity < 0 || cfg.FillDensity > 1 {
		return nil, now, fmt.Errorf("pmbench: fill density %v out of [0,1]", cfg.FillDensity)
	}
	// Warm-up: touch every page once, as pmbench does before timing.
	warmStart := now
	for i := 0; i < pages; i++ {
		var data []byte
		if data, now, err = v.Touch(now, seg.Addr(uint64(i)*vm.PageSize), true); err != nil {
			return nil, now, fmt.Errorf("pmbench warm-up: %w", err)
		}
		if cfg.FillDensity > 0 {
			// Fill a contiguous prefix: real heaps hold packed objects with
			// zero tails, not byte-interleaved noise.
			fill := int(cfg.FillDensity * float64(len(data)))
			for off := 0; off < fill; off++ {
				data[off] = byte(rng.Uint64()) | 1
			}
		}
	}
	res := &Result{
		Latencies:      stats.NewSample(1 << 16),
		ReadLatencies:  stats.NewSample(1 << 15),
		WriteLatencies: stats.NewSample(1 << 15),
		WarmupTime:     now - warmStart,
	}

	// Timed phase: uniform random 4 KB accesses.
	deadline := now + cfg.Duration
	runStart := now
	for now < deadline {
		if cfg.MaxAccesses > 0 && res.Accesses >= cfg.MaxAccesses {
			break
		}
		page := rng.Intn(pages)
		offset := uint64(rng.Intn(vm.PageSize/8)) * 8
		addr := seg.Addr(uint64(page)*vm.PageSize + offset)
		write := rng.Float64() >= cfg.ReadRatio
		start := now
		if write {
			now, err = v.Write64(now, addr, rng.Uint64())
		} else {
			_, now, err = v.Read64(now, addr)
		}
		if err != nil {
			return nil, now, fmt.Errorf("pmbench access: %w", err)
		}
		lat := now - start
		res.Latencies.Add(lat)
		if write {
			res.WriteLatencies.Add(lat)
		} else {
			res.ReadLatencies.Add(lat)
		}
		res.Accesses++
	}
	res.RunTime = now - runStart
	return res, now, nil
}
