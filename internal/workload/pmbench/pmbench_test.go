package pmbench

import (
	"testing"
	"time"

	"fluidmem/internal/core"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/kvstore/ramcloud"
	"fluidmem/internal/vm"
)

// newGuest builds a FluidMem-backed VM with the given local page budget.
func newGuest(t *testing.T, store string, localPages int, guestBytes uint64) *vm.VM {
	t.Helper()
	var cfg core.Config
	switch store {
	case "dram":
		cfg = core.DefaultConfig(dram.New(dram.DefaultParams(), 3), localPages)
	default:
		cfg = core.DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), 3), localPages)
	}
	mon, err := core.NewMonitor(cfg, nil, "hyp")
	if err != nil {
		t.Fatal(err)
	}
	base := uint64(0x7f00_0000_0000)
	if _, err := mon.RegisterRange(base, guestBytes, 1); err != nil {
		t.Fatal(err)
	}
	guest, err := vm.New(vm.Config{Name: "g", MemBytes: guestBytes, PID: 1, Base: base}, mon)
	if err != nil {
		t.Fatal(err)
	}
	return guest
}

func TestRunValidation(t *testing.T) {
	v := newGuest(t, "dram", 256, 4<<20)
	if _, _, err := Run(0, v, Config{WSSBytes: 100}); err == nil {
		t.Fatal("tiny WSS accepted")
	}
	if _, _, err := Run(0, v, Config{WSSBytes: 1 << 20, ReadRatio: 2}); err == nil {
		t.Fatal("bad read ratio accepted")
	}
}

func TestRunCollectsLatencies(t *testing.T) {
	v := newGuest(t, "dram", 128, 8<<20)
	cfg := DefaultConfig(2 << 20) // 512-page WSS over 128 local pages
	cfg.Duration = 50 * time.Millisecond
	res, now, err := Run(0, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses == 0 || res.Latencies.Len() != res.Accesses {
		t.Fatalf("accesses = %d, samples = %d", res.Accesses, res.Latencies.Len())
	}
	if res.ReadLatencies.Len()+res.WriteLatencies.Len() != res.Accesses {
		t.Fatal("read+write split wrong")
	}
	if res.WarmupTime <= 0 || res.RunTime <= 0 {
		t.Fatal("phase times missing")
	}
	if now <= res.WarmupTime {
		t.Fatal("end time inconsistent")
	}
	// 50/50 split within tolerance.
	frac := float64(res.ReadLatencies.Len()) / float64(res.Accesses)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("read fraction = %v", frac)
	}
}

func TestMaxAccessesCap(t *testing.T) {
	v := newGuest(t, "dram", 128, 8<<20)
	cfg := DefaultConfig(1 << 20)
	cfg.Duration = time.Hour
	cfg.MaxAccesses = 1000
	res, _, err := Run(0, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 1000 {
		t.Fatalf("accesses = %d", res.Accesses)
	}
}

func TestCacheHitFractionTracksLocalRatio(t *testing.T) {
	// With a working set 4× local memory, roughly a quarter of accesses hit
	// local pages (the <10 µs cluster in Figure 3).
	localPages := 128
	v := newGuest(t, "ramcloud", localPages, 16<<20)
	cfg := DefaultConfig(uint64(4*localPages) * vm.PageSize)
	cfg.Duration = 200 * time.Millisecond
	res, _, err := Run(0, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fastFrac := res.Latencies.FractionBelow(10 * time.Microsecond)
	if fastFrac < 0.15 || fastFrac > 0.40 {
		t.Fatalf("fast fraction = %v, want ≈0.25", fastFrac)
	}
}

func TestDRAMBackendFasterThanRAMCloud(t *testing.T) {
	run := func(store string) time.Duration {
		v := newGuest(t, store, 128, 16<<20)
		cfg := DefaultConfig(512 * vm.PageSize)
		cfg.Duration = 100 * time.Millisecond
		res, _, err := Run(0, v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latencies.Mean()
	}
	if d, r := run("dram"), run("ramcloud"); d >= r {
		t.Fatalf("dram mean %v not faster than ramcloud %v", d, r)
	}
}

func TestDeterministicAccessPattern(t *testing.T) {
	run := func() int {
		v := newGuest(t, "dram", 128, 8<<20)
		cfg := DefaultConfig(1 << 20)
		cfg.Duration = 20 * time.Millisecond
		res, _, err := Run(0, v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Accesses
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs diverged: %d vs %d accesses", a, b)
	}
}
