// Package ycsb implements the Yahoo Cloud Serving Benchmark driver used in
// the paper's MongoDB evaluation (§VI-D2): workload C (100% reads) with a
// zipfian key distribution, recording a latency time series like Figure 5's.
package ycsb

import (
	"fmt"
	"math"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/stats"
)

// RecordStore is the system under test (the MongoDB-like document store).
type RecordStore interface {
	// ReadRecord fetches one record by id, returning the completion time.
	ReadRecord(now time.Duration, id int) (time.Duration, error)
}

// Config parametrises a workload C run.
type Config struct {
	// Records is the keyspace size.
	Records int
	// Operations is the number of reads to issue.
	Operations int
	// ZipfTheta is the skew (YCSB default 0.99).
	ZipfTheta float64
	// ThinkTime is client-side cost between operations.
	ThinkTime time.Duration
	// Seed drives key selection.
	Seed uint64
}

// DefaultConfig mirrors YCSB workload C over n records.
func DefaultConfig(records, operations int) Config {
	return Config{
		Records:    records,
		Operations: operations,
		ZipfTheta:  0.99,
		ThinkTime:  2 * time.Microsecond,
		Seed:       1,
	}
}

// Result summarises a run.
type Result struct {
	// Series is the (virtual time, latency) course of every read —
	// Figure 5's plot data.
	Series *stats.TimeSeries
	// Latencies is the latency distribution.
	Latencies *stats.Sample
	// Operations is the number of reads completed.
	Operations int
}

// Run executes workload C against the store.
func Run(now time.Duration, store RecordStore, cfg Config) (*Result, time.Duration, error) {
	if cfg.Records < 1 || cfg.Operations < 1 {
		return nil, now, fmt.Errorf("ycsb: records=%d operations=%d", cfg.Records, cfg.Operations)
	}
	zipf, err := NewZipfian(cfg.Records, cfg.ZipfTheta, cfg.Seed)
	if err != nil {
		return nil, now, err
	}
	res := &Result{
		Series:    &stats.TimeSeries{},
		Latencies: stats.NewSample(cfg.Operations),
	}
	for i := 0; i < cfg.Operations; i++ {
		id := zipf.Next()
		start := now
		done, err := store.ReadRecord(now, id)
		if err != nil {
			return nil, done, fmt.Errorf("ycsb: read record %d: %w", id, err)
		}
		now = done + cfg.ThinkTime
		lat := done - start
		res.Series.Add(start, lat)
		res.Latencies.Add(lat)
		res.Operations++
	}
	return res, now, nil
}

// Zipfian generates zipf-distributed keys in [0, n) using the Gray et al.
// algorithm YCSB uses, with scrambling so hot keys are spread across the
// keyspace rather than clustered at 0.
type Zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *clock.Rand
}

// NewZipfian builds a generator over n items with skew theta in (0, 1).
func NewZipfian(n int, theta float64, seed uint64) (*Zipfian, error) {
	if n < 1 {
		return nil, fmt.Errorf("ycsb: zipfian over %d items", n)
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("ycsb: zipfian theta %v out of (0,1)", theta)
	}
	z := &Zipfian{n: n, theta: theta, rng: clock.NewRand(seed)}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z, nil
}

// Next returns the next key.
func (z *Zipfian) Next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank int
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	// Scramble: spread popular ranks over the keyspace (fnv-style).
	return int(scramble(uint64(rank)) % uint64(z.n))
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func scramble(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}
