package ycsb

import (
	"testing"
	"time"
)

// fakeStore serves reads with a fixed latency and counts key frequencies.
type fakeStore struct {
	latency time.Duration
	counts  map[int]int
}

func (f *fakeStore) ReadRecord(now time.Duration, id int) (time.Duration, error) {
	if f.counts != nil {
		f.counts[id]++
	}
	return now + f.latency, nil
}

func TestRunValidation(t *testing.T) {
	s := &fakeStore{latency: time.Microsecond}
	if _, _, err := Run(0, s, Config{Records: 0, Operations: 1, ZipfTheta: 0.99}); err == nil {
		t.Fatal("zero records accepted")
	}
	if _, _, err := Run(0, s, Config{Records: 10, Operations: 0, ZipfTheta: 0.99}); err == nil {
		t.Fatal("zero ops accepted")
	}
	if _, _, err := Run(0, s, Config{Records: 10, Operations: 1, ZipfTheta: 1.5}); err == nil {
		t.Fatal("bad theta accepted")
	}
}

func TestRunRecordsSeriesAndSample(t *testing.T) {
	s := &fakeStore{latency: 100 * time.Microsecond}
	cfg := DefaultConfig(1000, 500)
	res, now, err := Run(0, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Operations != 500 || res.Latencies.Len() != 500 || res.Series.Len() != 500 {
		t.Fatalf("ops=%d sample=%d series=%d", res.Operations, res.Latencies.Len(), res.Series.Len())
	}
	if res.Latencies.Mean() != 100*time.Microsecond {
		t.Fatalf("mean = %v", res.Latencies.Mean())
	}
	wantNow := 500 * (100*time.Microsecond + cfg.ThinkTime)
	if now != wantNow {
		t.Fatalf("now = %v, want %v", now, wantNow)
	}
}

func TestZipfianSkew(t *testing.T) {
	z, err := NewZipfian(10000, 0.99, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// The hottest key must get far more than the uniform share (n/10000=20).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000 {
		t.Fatalf("hottest key got %d of %d draws; zipf(0.99) should be far hotter", max, n)
	}
	// But the tail still gets coverage: many distinct keys drawn.
	if len(counts) < 3000 {
		t.Fatalf("only %d distinct keys drawn", len(counts))
	}
}

func TestZipfianRange(t *testing.T) {
	z, err := NewZipfian(100, 0.99, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		k := z.Next()
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestZipfianScrambledNotClustered(t *testing.T) {
	// Hot keys must be spread across the keyspace, not concentrated at 0.
	z, err := NewZipfian(10000, 0.99, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	hottest, hotCount := 0, 0
	for k, c := range counts {
		if c > hotCount {
			hottest, hotCount = k, c
		}
	}
	if hottest < 100 {
		t.Logf("hottest key is %d; scrambling usually spreads it", hottest)
	}
}

func TestZipfianDeterministic(t *testing.T) {
	a, _ := NewZipfian(1000, 0.99, 5)
	b, _ := NewZipfian(1000, 0.99, 5)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("sequence diverged")
		}
	}
}

func TestZipfianValidation(t *testing.T) {
	if _, err := NewZipfian(0, 0.99, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewZipfian(10, 0, 1); err == nil {
		t.Fatal("theta=0 accepted")
	}
}
