// Package profiling is the shared pprof plumbing for the measurement
// binaries (fluidmem-bench, hotpath-probe): CPU, allocation, and
// mutex-contention profiles gated behind flags, so scaling-curve runs (see
// EXPERIMENTS.md) can be attributed to code without editing the harness.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by non-empty paths and returns a stop
// function that finishes and writes them. The CPU profile streams from now
// until stop; the allocation and mutex profiles snapshot at stop time (after
// a GC, so the heap profile reflects live steady state, and with mutex
// sampling enabled for the whole window).
func Start(cpuPath, memPath, mutexPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	prevMutexFraction := 0
	if mutexPath != "" {
		// Sample every contention event: the engine's hot paths are meant to
		// be lock-free, so any sample at all is signal.
		prevMutexFraction = runtime.SetMutexProfileFraction(1)
	}
	stop := func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			runtime.GC() // materialise the final allocation state
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("memprofile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		if mutexPath != "" {
			defer runtime.SetMutexProfileFraction(prevMutexFraction)
			f, err := os.Create(mutexPath)
			if err != nil {
				return fmt.Errorf("mutexprofile: %w", err)
			}
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				f.Close()
				return fmt.Errorf("mutexprofile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("mutexprofile: %w", err)
			}
		}
		return nil
	}
	return stop, nil
}
