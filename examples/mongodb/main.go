// MongoDB example: a document store whose WiredTiger-style cache is three
// times the guest's local DRAM, serving a zipfian YCSB-C read workload — the
// paper's Figure 5 scenario for one cache size, FluidMem vs swap.
package main

import (
	"fmt"
	"log"

	"fluidmem"
	"fluidmem/internal/blockdev"
	"fluidmem/internal/mongodb"
	"fluidmem/internal/stats"
	"fluidmem/internal/workload/ycsb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		records = 8 << 10 // 8 Mi 1 KB records ≈ 8 MB on disk
		cacheMB = 2
		localMB = 2
		ops     = 20000
	)
	fmt.Printf("MongoDB/WiredTiger: %d records, %d MB cache over %d MB DRAM, %d YCSB-C reads\n\n",
		records, cacheMB, localMB, ops)

	type system struct {
		label string
		cfg   fluidmem.MachineConfig
	}
	for _, sys := range []system{
		{"Swap + NVMeoF      ", fluidmem.MachineConfig{Mode: fluidmem.ModeSwap, SwapDev: fluidmem.SwapNVMeoF}},
		{"FluidMem + RAMCloud", fluidmem.MachineConfig{Mode: fluidmem.ModeFluidMem, Backend: fluidmem.BackendRAMCloud}},
	} {
		cfg := sys.cfg
		cfg.LocalMemory = localMB << 20
		cfg.GuestMemory = 4 * cacheMB << 20
		cfg.BootOS = true
		cfg.Seed = 1
		machine, err := fluidmem.NewMachine(cfg)
		if err != nil {
			return err
		}
		disk, err := blockdev.New(blockdev.SSDParams(4*records*mongodb.RecordBytes), 7)
		if err != nil {
			return err
		}
		store, now, err := mongodb.Open(machine.Now(), machine.VM(), disk, mongodb.DefaultConfig(records, cacheMB<<20))
		if err != nil {
			return err
		}
		ycfg := ycsb.DefaultConfig(records, ops)
		ycfg.ZipfTheta = 0.6
		res, _, err := ycsb.Run(now, store, ycfg)
		if err != nil {
			return err
		}
		st := store.Stats()
		fmt.Printf("%s  avg %8.1fµs  p95 %8.1fµs  stdev %7.1fµs  cache hit %4.1f%%\n",
			sys.label,
			stats.Micros(res.Latencies.Mean()),
			stats.Micros(res.Latencies.Percentile(95)),
			stats.Micros(res.Latencies.Stdev()),
			100*float64(st.CacheHits)/float64(st.Reads))
	}
	fmt.Println("\nSwap cannot give the storage engine stable extra capacity;")
	fmt.Println("FluidMem provides what behaves like native memory (§VI-D2).")
	return nil
}
