// Quickstart: boot a FluidMem-backed VM whose guest memory is five times its
// local DRAM budget, write a dataset bigger than local memory, and read it
// back — every page transparently round-trips through the remote key-value
// store.
package main

import (
	"fmt"
	"log"

	"fluidmem"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	machine, err := fluidmem.NewMachine(fluidmem.MachineConfig{
		Mode:        fluidmem.ModeFluidMem,
		Backend:     fluidmem.BackendRAMCloud,
		LocalMemory: 8 << 20,  // 8 MB of local DRAM (the monitor's LRU size)
		GuestMemory: 40 << 20, // the guest sees 40 MB
		BootOS:      true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("booted: %d pages resident (%.1f MB), boot took %v of virtual time\n",
		machine.ResidentPages(), float64(machine.ResidentPages())*4/1024, machine.Now())

	// Allocate a 24 MB heap — 3× the local budget.
	heap, err := machine.Alloc("heap", 24<<20)
	if err != nil {
		return err
	}
	words := heap.Pages()
	fmt.Printf("writing %d pages (%d MB) through an %d MB window...\n",
		words, heap.Bytes>>20, 8)
	for i := 0; i < words; i++ {
		if err := machine.Write64(heap.Addr(uint64(i)*fluidmem.PageSize), uint64(i)*7+3); err != nil {
			return err
		}
	}
	fmt.Printf("reading everything back...\n")
	for i := 0; i < words; i++ {
		v, err := machine.Read64(heap.Addr(uint64(i) * fluidmem.PageSize))
		if err != nil {
			return err
		}
		if v != uint64(i)*7+3 {
			return fmt.Errorf("page %d corrupted: got %d", i, v)
		}
	}

	snap := machine.Stats() // one aggregated snapshot of every layer
	st, store := snap.Monitor, snap.Store
	fmt.Printf("\nall %d pages verified.\n", words)
	fmt.Printf("resident now: %d pages — never above the local budget\n", snap.ResidentPages)
	fmt.Printf("monitor: %d faults (%d first-touch, %d remote reads, %d steals), %d evictions\n",
		st.Faults, st.FirstTouch, st.RemoteReads, st.Steals, st.Evictions)
	fmt.Printf("store:   %d gets, %d puts (%d batched flushes), %.1f MB resident remotely\n",
		store.Gets, store.Puts, st.Flushes, float64(store.BytesStored)/(1<<20))
	fmt.Printf("virtual time elapsed: %v\n", snap.Now)
	return nil
}
