// Migration example: move a running VM between two hypervisors using
// post-copy migration over the shared key-value store (§VII). No page
// contents cross between the hypervisors — they are already disaggregated —
// so the handoff ships only kilobytes of page-tracking metadata, and the
// guest's memory survives bit-for-bit.
package main

import (
	"fmt"
	"log"

	"fluidmem"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/ramcloud"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One RAMCloud cluster and one partition registry serve both hypervisors.
	store := ramcloud.New(ramcloud.DefaultParams(), 42)
	registry := kvstore.NewLocalRegistry()

	newHypervisor := func(id string, seed uint64, boot bool) (*fluidmem.Machine, error) {
		return fluidmem.NewMachine(fluidmem.MachineConfig{
			Mode:         fluidmem.ModeFluidMem,
			LocalMemory:  16 << 20,
			GuestMemory:  64 << 20,
			BootOS:       boot,
			SharedStore:  store,
			Registry:     registry,
			HypervisorID: id,
			Seed:         seed,
		})
	}

	src, err := newHypervisor("hypervisor-a", 1, true)
	if err != nil {
		return err
	}
	dst, err := newHypervisor("hypervisor-b", 2, false)
	if err != nil {
		return err
	}

	// The guest runs a workload on hypervisor A.
	heap, err := src.Alloc("app.heap", 24<<20)
	if err != nil {
		return err
	}
	for i := 0; i < heap.Pages(); i++ {
		if err := src.Write64(heap.Addr(uint64(i)*fluidmem.PageSize), uint64(i)*13+7); err != nil {
			return err
		}
	}
	fmt.Printf("hypervisor-a: guest running, %d pages resident, %.1f MB already in the store\n",
		src.ResidentPages(), float64(src.Stats().Store.BytesStored)/(1<<20))

	// Migrate.
	fmt.Println("migrating guest to hypervisor-b (post-copy over the store)...")
	if err := fluidmem.Migrate(src, dst); err != nil {
		return err
	}
	fmt.Printf("hypervisor-b: guest adopted at t=%v, %d pages resident (lazy post-copy)\n",
		dst.Now(), dst.ResidentPages())

	// The workload continues on B; its memory faults in from the store.
	for i := 0; i < heap.Pages(); i++ {
		v, err := dst.Read64(heap.Addr(uint64(i) * fluidmem.PageSize))
		if err != nil {
			return err
		}
		if v != uint64(i)*13+7 {
			return fmt.Errorf("page %d corrupted in migration: %d", i, v)
		}
	}
	st := dst.Stats().Monitor
	fmt.Printf("hypervisor-b: all %d heap pages verified after migration\n", heap.Pages())
	fmt.Printf("             %d faults since adoption (%d remote reads, %d first-touch)\n",
		st.Faults, st.RemoteReads, st.FirstTouch)
	fmt.Println("no page data travelled hypervisor-to-hypervisor; the store was the channel.")
	return nil
}
