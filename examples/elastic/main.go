// Elastic example: walk a booted VM's footprint down to near zero and back —
// the paper's Table III demonstration of full memory disaggregation. The VM
// stays alive with 180 pages (SSH still answers), keeps answering pings at
// 80 pages, and snaps back to full responsiveness the moment the footprint
// is raised. A balloon driver, the guest-cooperative alternative, bottoms
// out three orders of magnitude higher.
package main

import (
	"fmt"
	"log"

	"fluidmem"
	"fluidmem/internal/vm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	machine, err := fluidmem.NewMachine(fluidmem.MachineConfig{
		Mode:        fluidmem.ModeFluidMem,
		Backend:     fluidmem.BackendRAMCloud,
		LocalMemory: 128 << 20,
		GuestMemory: 512 << 20,
		BootOS:      true,
		OSProfile:   vm.ScaledOSProfile(16000),
	})
	if err != nil {
		return err
	}
	fmt.Printf("booted: %d pages resident (%.1f MB)\n\n",
		machine.ResidentPages(), float64(machine.ResidentPages())*4/1024)

	probe := func(note string) error {
		ssh, err := machine.Probe(vm.SSHService())
		if err != nil {
			return err
		}
		icmp, err := machine.Probe(vm.ICMPService())
		if err != nil {
			return err
		}
		verdict := func(r vm.ProbeResult) string {
			switch {
			case r.Deadlocked:
				return "deadlocked"
			case r.Responded:
				return "responds"
			default:
				return "times out"
			}
		}
		fmt.Printf("%-38s footprint %6d pages (%8.3f MB): ssh %-10s icmp %s\n",
			note, machine.ResidentPages(), float64(machine.ResidentPages())*4/1024,
			verdict(ssh), verdict(icmp))
		return nil
	}

	if err := probe("after boot"); err != nil {
		return err
	}

	// The balloon, for contrast: it cannot get below its driver floor.
	balloon := machine.Balloon()
	balloon.FloorPages = 4000
	reached, _ := balloon.InflateTo(machine.Now(), 0)
	if err := probe(fmt.Sprintf("balloon fully inflated (floor %d)", reached)); err != nil {
		return err
	}

	// FluidMem's LRU resize goes much further.
	for _, pages := range []int{1024, 180, 80} {
		if err := machine.ResizeFootprint(pages); err != nil {
			return err
		}
		if err := probe(fmt.Sprintf("FluidMem footprint = %d pages", pages)); err != nil {
			return err
		}
	}

	// Revive: raise the limit and the VM instantly returns to normal.
	if err := machine.ResizeFootprint(32768); err != nil {
		return err
	}
	if err := probe("revived (footprint raised)"); err != nil {
		return err
	}
	fmt.Printf("\nremote store now holds %.1f MB of this VM's pages; virtual time %v\n",
		float64(machine.Store().Stats().BytesStored)/(1<<20), machine.Now())
	return nil
}
