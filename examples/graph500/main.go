// Graph500 example: run breadth-first search over a graph whose working set
// is ~4× local DRAM, on FluidMem (RAMCloud) and on swap (NVMeoF), and compare
// TEPS — a single cell of the paper's Figure 4 sweep, runnable on its own.
package main

import (
	"fmt"
	"log"

	"fluidmem"
	"fluidmem/internal/graph500"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		scale   = 14 // 16384 vertices, ~4.5 MB graph
		localMB = 1  // squeeze it through 1 MB of DRAM
	)
	fmt.Printf("Graph500 scale %d (%.1f MB graph) over %d MB local DRAM\n\n",
		scale, float64(graph500.MemoryBytes(scale, 16))/(1<<20), localMB)

	type system struct {
		label string
		cfg   fluidmem.MachineConfig
	}
	systems := []system{
		{"FluidMem + RAMCloud", fluidmem.MachineConfig{
			Mode: fluidmem.ModeFluidMem, Backend: fluidmem.BackendRAMCloud}},
		{"Swap + NVMeoF      ", fluidmem.MachineConfig{
			Mode: fluidmem.ModeSwap, SwapDev: fluidmem.SwapNVMeoF}},
	}
	var teps []float64
	for _, sys := range systems {
		cfg := sys.cfg
		cfg.LocalMemory = localMB << 20
		cfg.GuestMemory = 4 * graph500.MemoryBytes(scale, 16)
		cfg.BootOS = true
		cfg.Seed = 1
		machine, err := fluidmem.NewMachine(cfg)
		if err != nil {
			return err
		}
		gcfg := graph500.DefaultConfig(scale)
		gcfg.Roots = 4
		gcfg.Validate = true
		res, _, err := graph500.Run(machine.Now(), machine.VM(), gcfg)
		if err != nil {
			return err
		}
		teps = append(teps, res.HarmonicMeanTEPS)
		fmt.Printf("%s  %8.2f MTEPS  (%d edges, %d BFS roots, construction %v, traversal %v)\n",
			sys.label, res.HarmonicMeanTEPS/1e6, res.Edges, len(res.TEPS),
			res.ConstructionTime.Round(1e6), res.TraversalTime.Round(1e6))
	}
	fmt.Printf("\nFluidMem speedup over swap: %.2fx (the paper's Figure 4c/d effect)\n", teps[0]/teps[1])
	return nil
}
