package fluidmem

import (
	"reflect"
	"strings"
	"testing"

	"fluidmem/internal/core"
)

// hostVMs builds n identical FluidMem VM configs for a host.
func hostVMs(n int) []MachineConfig {
	vms := make([]MachineConfig, n)
	for i := range vms {
		vms[i] = MachineConfig{Backend: BackendDRAM, GuestMemory: 4 << 20}
	}
	return vms
}

func TestNewHostValidation(t *testing.T) {
	if _, err := NewHost(HostConfig{TotalLocalPages: 64}); err == nil {
		t.Fatal("empty VM list accepted")
	}
	if _, err := NewHost(HostConfig{VMs: hostVMs(4), TotalLocalPages: 3}); err == nil {
		t.Fatal("budget below one page per VM accepted")
	}
	vms := hostVMs(2)
	vms[1].Mode = ModeSwap
	if _, err := NewHost(HostConfig{VMs: vms, TotalLocalPages: 64}); err == nil {
		t.Fatal("swap-mode VM accepted into a resizable shared budget")
	}
	bad := &ArbiterConfig{Policy: ArbiterPolicy{FloorPages: -1, Step: 1}}
	if _, err := NewHost(HostConfig{VMs: hostVMs(2), TotalLocalPages: 64, Arbiter: bad}); err == nil {
		t.Fatal("invalid arbiter policy accepted")
	}
}

// Capacity inputs must fail NewMachine up front, each with a clear error.
func TestMachineCapacityValidation(t *testing.T) {
	base := MachineConfig{Backend: BackendDRAM, LocalMemory: 1 << 20, GuestMemory: 4 << 20}

	neg := base
	neg.Monitor = &core.Config{LRUCapacity: -5}
	if _, err := NewMachine(neg); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative override capacity: err = %v", err)
	}

	ghost := base
	ghost.Hotset = &HotsetParams{GhostCapacity: 0, BucketPages: 1}
	if _, err := NewMachine(ghost); err == nil || !strings.Contains(err.Error(), "GhostCapacity") {
		t.Fatalf("zero ghost capacity: err = %v", err)
	}
	ghost.Hotset = &HotsetParams{GhostCapacity: -8, BucketPages: 1}
	if _, err := NewMachine(ghost); err == nil || !strings.Contains(err.Error(), "GhostCapacity") {
		t.Fatalf("negative ghost capacity: err = %v", err)
	}

	bucket := base
	bucket.Hotset = &HotsetParams{GhostCapacity: 64, BucketPages: 0}
	if _, err := NewMachine(bucket); err == nil || !strings.Contains(err.Error(), "BucketPages") {
		t.Fatalf("zero bucket width: err = %v", err)
	}

	// A valid Hotset config must still work.
	ok := base
	p := DefaultHotsetParams(256)
	ok.Hotset = &p
	m, err := NewMachine(ok)
	if err != nil {
		t.Fatal(err)
	}
	if m.Monitor().Hotset() == nil {
		t.Fatal("valid Hotset config did not attach a tracker")
	}
}

// Tenant lifecycle is host-visible state: an inactive tenant (a VM that
// died mid-run, or one that has not booted yet in an open-loop scenario)
// stops gating the epoch-window barrier, so planner epochs keep closing
// for the survivors instead of stalling forever; reactivating it makes the
// barrier wait for it again. This is the host-level hook internal/loadgen's
// churn scenario drives.
func TestHostTenantLifecycleWindows(t *testing.T) {
	const epochOps = 8
	const span = 24
	mc := MachineConfig{Backend: BackendDRAM, GuestMemory: 4 << 20}
	specs := []TenantSpec{{ID: "a", VM: mc}, {ID: "b", VM: mc}, {ID: "dead", VM: mc}}
	h, err := NewHost(HostConfig{
		Tenants: specs, TotalLocalPages: 48, Seed: 1,
		Arbiter: &ArbiterConfig{EpochOps: epochOps},
	})
	if err != nil {
		t.Fatal(err)
	}
	segs := make([]uint64, len(specs))
	for i := range specs {
		seg, err := h.Machine(i).Alloc("ws", span*PageSize)
		if err != nil {
			t.Fatal(err)
		}
		segs[i] = seg.Addr(0)
	}

	if err := h.SetTenantActive("ghost", true); err == nil {
		t.Fatal("unknown tenant accepted")
	}
	if h.TenantActive("ghost") {
		t.Fatal("unknown tenant reported active")
	}
	for _, ts := range h.Stats().Tenants {
		if !ts.Active {
			t.Fatalf("tenant %s not active at boot", ts.ID)
		}
	}

	// drive issues exactly one window's worth of ops for the given tenants.
	drive := func(idxs ...int) {
		for op := 0; op < epochOps; op++ {
			for _, i := range idxs {
				addr := segs[i] + uint64(op%span)*PageSize
				if _, err := h.Touch(i, addr, op%3 == 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	epochs := func() uint64 { return h.Stats().Arbiter.Epochs }

	drive(0, 1, 2)
	if got := epochs(); got != 1 {
		t.Fatalf("epochs after a full window = %d, want 1", got)
	}

	// Mid-run death: the survivors' windows must keep closing.
	if err := h.SetTenantActive("dead", false); err != nil {
		t.Fatal(err)
	}
	if h.TenantActive("dead") {
		t.Fatal("deactivated tenant reported active")
	}
	drive(0, 1)
	if got := epochs(); got != 2 {
		t.Fatalf("barrier stalled on a dead tenant: epochs = %d, want 2", got)
	}
	for _, ts := range h.Stats().Tenants {
		if want := ts.ID != "dead"; ts.Active != want {
			t.Fatalf("tenant %s Active = %v, want %v", ts.ID, ts.Active, want)
		}
	}

	// Reactivation (the late-boot analogue): the barrier waits for it again.
	if err := h.SetTenantActive("dead", true); err != nil {
		t.Fatal(err)
	}
	drive(0, 1)
	if got := epochs(); got != 2 {
		t.Fatalf("epoch closed without the rebooted tenant: epochs = %d, want 2", got)
	}
	drive(2)
	if got := epochs(); got != 3 {
		t.Fatalf("epochs after the rebooted tenant crossed = %d, want 3", got)
	}
}

// driveHost runs rounds of exactly epochOps operations per VM, with the
// given within-round schedule. Each VM's op stream is a fixed cyclic walk
// over its own page set, so the logical per-VM histories are identical no
// matter the schedule or worker count.
type hostSchedule func(t *testing.T, h *Host, round int, epochOps int, walk func(t *testing.T, h *Host, vmIdx, op int))

func roundRobin(t *testing.T, h *Host, round, epochOps int, walk func(*testing.T, *Host, int, int)) {
	for op := 0; op < epochOps; op++ {
		for i := 0; i < h.VMs(); i++ {
			walk(t, h, i, round*epochOps+op)
		}
	}
}

func blocked(t *testing.T, h *Host, round, epochOps int, walk func(*testing.T, *Host, int, int)) {
	for i := 0; i < h.VMs(); i++ {
		for op := 0; op < epochOps; op++ {
			walk(t, h, i, round*epochOps+op)
		}
	}
}

func blockedReversed(t *testing.T, h *Host, round, epochOps int, walk func(*testing.T, *Host, int, int)) {
	for i := h.VMs() - 1; i >= 0; i-- {
		for op := 0; op < epochOps; op++ {
			walk(t, h, i, round*epochOps+op)
		}
	}
}

// skewedHostRun builds a 2-VM host (one VM cycling a working set 3x its
// share, one fitting comfortably), drives it for `rounds` epochs under the
// schedule, and returns the host.
func skewedHostRun(t *testing.T, workers int, withArbiter, traced bool, sched hostSchedule) *Host {
	t.Helper()
	const totalPages, epochOps, rounds = 64, 200, 6
	vms := hostVMs(2)
	if workers > 1 {
		for i := range vms {
			// The override replaces the whole monitor config, so it must
			// start from the full default (NewMachine fills Store/capacity).
			mc := core.DefaultConfig(nil, 0)
			mc.Workers = workers
			vms[i].Monitor = &mc
		}
	}
	if traced {
		for i := range vms {
			vms[i].Tracer = NewTracer(false)
		}
	}
	cfg := HostConfig{VMs: vms, TotalLocalPages: totalPages, Seed: 42}
	if withArbiter {
		cfg.Arbiter = &ArbiterConfig{EpochOps: epochOps}
	}
	if traced {
		cfg.Tracer = NewTracer(false)
	}
	h, err := NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// vm0 cycles 40 pages (just past its 32-page split: every access misses
	// under LRU and re-references at ghost depth 8 — a steep curve the
	// arbiter can close); vm1 cycles 8 pages (fits: flat curve).
	segs := make([]uint64, h.VMs())
	spans := []int{40, 8}
	for i := 0; i < h.VMs(); i++ {
		seg, err := h.Machine(i).Alloc("ws", uint64(spans[i])*PageSize)
		if err != nil {
			t.Fatal(err)
		}
		segs[i] = seg.Addr(0)
	}
	walk := func(t *testing.T, h *Host, vmIdx, op int) {
		t.Helper()
		addr := segs[vmIdx] + uint64(op%spans[vmIdx])*PageSize
		if _, err := h.Touch(vmIdx, addr, op%3 == 0); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < rounds; r++ {
		sched(t, h, r, epochOps, walk)
	}
	return h
}

// The arbiter must move pages from the flat-curve VM to the steep one,
// conserving the budget and keeping the floor.
func TestHostArbiterShiftsPagesToHotVM(t *testing.T) {
	h := skewedHostRun(t, 1, true, false, roundRobin)
	st := h.Stats()
	if st.Arbiter.Epochs == 0 || st.Arbiter.Moves == 0 {
		t.Fatalf("arbiter never acted: %+v", st.Arbiter)
	}
	if st.Shares[0] <= 32 {
		t.Fatalf("hot VM share %d did not grow past the equal split", st.Shares[0])
	}
	if st.Shares[1] >= 32 {
		t.Fatalf("cold VM share %d did not shrink", st.Shares[1])
	}
	if total := st.Shares[0] + st.Shares[1]; total != 64 {
		t.Fatalf("budget not conserved: %d", total)
	}
	if st.Arbiter.GrantedPages != st.Arbiter.DonatedPages {
		t.Fatalf("grant/donate flow unbalanced: %+v", st.Arbiter)
	}
	if st.Arbiter.PredictedSavings == 0 {
		t.Fatal("moves with no predicted savings")
	}
	if st.WSSPages[0] <= st.WSSPages[1] {
		t.Fatalf("WSS estimates do not reflect the skew: %v", st.WSSPages)
	}
}

// hostDecisionDigest captures everything the arbiter decided plus the
// logical state it decided from: per-VM shares, hotset digests, and the
// epoch counters.
func hostDecisionDigest(h *Host) []uint64 {
	st := h.Stats()
	var out []uint64
	for i := 0; i < h.VMs(); i++ {
		out = append(out, uint64(st.Shares[i]), uint64(st.WSSPages[i]),
			h.Machine(i).Monitor().Hotset().Digest(),
			st.VMs[i].Monitor.Faults, st.VMs[i].Monitor.Evictions)
	}
	out = append(out, st.Arbiter.Epochs, st.Arbiter.Moves,
		st.Arbiter.GrantedPages, st.Arbiter.PredictedSavings, st.Arbiter.RealizedSavings)
	return out
}

// Same seed, different fault-pipeline widths: per-VM WSS estimates and every
// arbiter decision must be identical — worker parallelism is timing-only.
func TestHostWorkerCountInvariance(t *testing.T) {
	ref := hostDecisionDigest(skewedHostRun(t, 1, true, false, roundRobin))
	for _, workers := range []int{2, 4, 8} {
		got := hostDecisionDigest(skewedHostRun(t, workers, true, false, roundRobin))
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d diverged:\n got %v\nwant %v", workers, got, ref)
		}
	}
}

// Same per-VM op streams, different within-round interleavings: arbiter
// decisions must be identical — snapshots are captured as each VM crosses
// its own op boundary, never at a shared wall-clock instant.
func TestHostInterleavingInvariance(t *testing.T) {
	ref := hostDecisionDigest(skewedHostRun(t, 2, true, false, roundRobin))
	for name, sched := range map[string]hostSchedule{
		"blocked":          blocked,
		"blocked_reversed": blockedReversed,
	} {
		got := hostDecisionDigest(skewedHostRun(t, 2, true, false, sched))
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("schedule %s diverged:\n got %v\nwant %v", name, got, ref)
		}
	}
}

// Tracing a multi-VM run is pure observation: virtual clocks, shares, and
// every counter must be bit-identical to the untraced run.
func TestHostTracedBitIdentical(t *testing.T) {
	plain := skewedHostRun(t, 2, true, false, roundRobin)
	traced := skewedHostRun(t, 2, true, true, roundRobin)
	if plain.Now() != traced.Now() {
		t.Fatalf("tracing moved the host clock: %v != %v", plain.Now(), traced.Now())
	}
	for i := 0; i < plain.VMs(); i++ {
		if pn, tn := plain.Machine(i).Now(), traced.Machine(i).Now(); pn != tn {
			t.Fatalf("vm%d clock diverged under tracing: %v != %v", i, pn, tn)
		}
		ps, ts := plain.Machine(i).Stats(), traced.Machine(i).Stats()
		if *ps.Monitor != *ts.Monitor {
			t.Fatalf("vm%d monitor counters diverged: %+v != %+v", i, ps.Monitor, ts.Monitor)
		}
	}
	if !reflect.DeepEqual(hostDecisionDigest(plain), hostDecisionDigest(traced)) {
		t.Fatal("tracing changed arbiter decisions")
	}
}

// Without an arbiter the split stays static and NoteOp is free.
func TestHostStaticSplitStaysPut(t *testing.T) {
	h := skewedHostRun(t, 1, false, false, roundRobin)
	st := h.Stats()
	if st.Shares[0] != 32 || st.Shares[1] != 32 {
		t.Fatalf("static split moved: %v", st.Shares)
	}
	if st.Arbiter.Epochs != 0 {
		t.Fatalf("arbiter ran without being configured: %+v", st.Arbiter)
	}
}

// Tenants share one store but must never share pages: full isolation via
// distinct partitions, even with a shared registry.
func TestHostTenantsIsolated(t *testing.T) {
	h, err := NewHost(HostConfig{VMs: hostVMs(2), TotalLocalPages: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	segs := make([]*Machine, 2)
	addrs := make([]uint64, 2)
	for i := 0; i < 2; i++ {
		segs[i] = h.Machine(i)
		seg, err := segs[i].Alloc("data", 32*PageSize)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = seg.Addr(0)
	}
	// Same guest-physical addresses, different tenants, different values —
	// cycle past the 8-page share so both evict through the shared store.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 2; i++ {
			for p := 0; p < 32; p++ {
				a := addrs[i] + uint64(p)*PageSize
				if pass == 0 {
					if err := segs[i].Write64(a, uint64(i+1)*1000+uint64(p)); err != nil {
						t.Fatal(err)
					}
				} else {
					v, err := segs[i].Read64(a)
					if err != nil {
						t.Fatal(err)
					}
					if v != uint64(i+1)*1000+uint64(p) {
						t.Fatalf("vm%d page %d = %d: tenant data bled through the shared store", i, p, v)
					}
				}
			}
		}
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
}

// The refusal is stable and side-effect-free: the swap machine's footprint
// is untouched after the rejected resize, and the error points the operator
// at the balloon.
func TestResizeRefusalLeavesSwapUntouched(t *testing.T) {
	m := newSwapMachine(t, SwapNVMeoF, 4, 32, true)
	before := m.ResidentPages()
	err := m.ResizeFootprint(before / 2)
	if err == nil {
		t.Fatal("swap machine allowed footprint resize")
	}
	if !strings.Contains(err.Error(), "balloon") {
		t.Fatalf("refusal does not mention the balloon escape hatch: %v", err)
	}
	if m.ResidentPages() != before {
		t.Fatalf("rejected resize changed the footprint: %d != %d", m.ResidentPages(), before)
	}
}
