package fluidmem

import (
	"errors"
	"fmt"
)

// Migrate moves the guest VM from src to dst using post-copy migration over
// the disaggregated store (§VII: live migration and memory disaggregation
// are complementary). The page contents never travel between hypervisors —
// they are already in the shared key-value store; only the monitor's
// page-tracking metadata crosses the wire, and pages fault back in on the
// destination on demand.
//
// Requirements: both machines run ModeFluidMem, were built with the same
// SharedStore and Registry, have distinct PIDs, and dst has never hosted a
// workload (create it with BootOS=false; its empty initial VM is discarded).
func Migrate(src, dst *Machine) error {
	if src.monitor == nil || dst.monitor == nil {
		return errors.New("fluidmem: migration requires FluidMem machines on both sides")
	}
	if src.store != dst.store {
		return errors.New("fluidmem: migration requires a shared store (MachineConfig.SharedStore)")
	}
	srcPID := src.vm.Config().PID
	dstPID := dst.vm.Config().PID
	if srcPID == dstPID {
		return fmt.Errorf("fluidmem: source and destination share PID %d; use distinct seeds", srcPID)
	}
	if dst.ResidentPages() != 0 || dst.os != nil {
		return errors.New("fluidmem: destination must be a fresh machine (no booted OS, no resident pages)")
	}

	// Clear the destination's placeholder VM so its region cannot collide
	// with the imported one.
	if _, err := dst.monitor.UnregisterVM(dst.now, dstPID); err != nil {
		return fmt.Errorf("fluidmem: clear destination: %w", err)
	}

	// Source side: pause, push resident pages, hand over the metadata.
	image, now, err := src.monitor.ExportVM(src.now, srcPID)
	if err != nil {
		return fmt.Errorf("fluidmem: export: %w", err)
	}
	src.now = now

	// The destination resumes no earlier than the source stopped.
	if src.now > dst.now {
		dst.now = src.now
	}
	now, err = dst.monitor.ImportVM(dst.now, image)
	if err != nil {
		return fmt.Errorf("fluidmem: import: %w", err)
	}
	dst.now = now

	// The guest itself (its allocations, OS state) moves wholesale; only its
	// backing changes.
	if err := src.vm.Rebind(dst.monitor); err != nil {
		return err
	}
	dst.vm = src.vm
	dst.os = src.os
	dst.balloon = src.balloon
	src.vm = nil
	src.os = nil
	src.balloon = nil
	return nil
}
